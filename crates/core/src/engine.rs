//! The generic stage engine: one executor for every summary pipeline.
//!
//! A [`StagePipeline`] runs an ordered [`Stage`] list over a
//! [`Network`], threading a summary state through the stages and
//! finishing with the server solve + center lift that every paper
//! pipeline shares. The seven paper pipelines are canned stage lists
//! (see [`crate::pipelines`] and [`crate::distributed`]); arbitrary
//! compositions — including ones the paper never evaluated — are just
//! other lists:
//!
//! ```
//! use ekm_core::engine::StagePipeline;
//! use ekm_core::params::SummaryParams;
//! use ekm_net::Network;
//! use ekm_linalg::Matrix;
//!
//! let data = Matrix::from_fn(400, 24, |i, j| {
//!     ((i % 2) as f64) * 4.0 + ((i * 31 + j * 17) % 11) as f64 * 0.05
//! });
//! let params = SummaryParams::practical(2, 400, 24).with_seed(7);
//! // A composition the paper never ran: JL, then FSS, then quantize.
//! let pipe = StagePipeline::from_names("jl,fss,qt", params).unwrap();
//! let mut net = Network::new(1);
//! let out = pipe.run(&data, &mut net).unwrap();
//! assert_eq!(out.centers.shape(), (2, 24));
//! assert!(out.uplink_bits > 0);
//! ```
//!
//! Multi-source execution is concurrent: per-source stage work (local
//! SVDs, bicriteria, projections, sampling, transmission) runs on
//! `std::thread::scope` workers, each owning an independent
//! [`ekm_net::TransportLink`] whose lock-free counters are merged
//! at the barrier — so bit accounting stays exact and results are
//! bit-identical to sequential execution (every source's randomness is
//! derived from its own seed stream).
//!
//! The engine is generic over [`ekm_net::Transport`]: the example above
//! runs the in-process [`Network`] simulation, and the same pipeline —
//! same stages, same seeds, bit-identical counters and centers — runs
//! over the TCP backend ([`ekm_net::tcp`]) across real processes.

use crate::cache::{Fnv, StageCache, StageSnapshot};
use crate::complexity;
use crate::params::SummaryParams;
use crate::pipelines::{expect_basis, expect_coreset, quantize_for_wire, seeds};
use crate::projection::MaybeProjection;
use crate::server::{lift_centers_through_basis, solve_weighted_kmeans};
use crate::stage::{
    dispca_rank, display_name, disss_budget, fss_dims, jl_target_dim, resolve_quantizer,
    stream_plan, FssStage, JlStage, Stage, StreamStage,
};
use crate::{distributed, CoreError, Result, RunOutput};
use ekm_coreset::{FssBuilder, StreamingCoreset};
use ekm_linalg::random::derive_seed;
use ekm_linalg::{ops, Matrix};
use ekm_net::messages::Message;
use ekm_net::{Transport, TransportLink};
use ekm_quant::RoundingQuantizer;
use std::borrow::Cow;
use std::time::Instant;

/// Positional JL bookkeeping shared by every execution model: the
/// in-process engine, the server-side driver, and the source-side
/// executors all evolve an identical copy, so they derive the same seed
/// streams and positional roles without communicating.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct JlBook {
    /// Number of JL stages applied so far.
    pub jl_count: usize,
    /// Whether the `JL_AFTER` seed stream has been consumed.
    pub jl_after_used: bool,
    /// Whether any reduction stage (DR/CR/disPCA/disSS) has run.
    pub any_reduction: bool,
}

impl JlBook {
    /// Allocates the seed stream and positional role for the next JL
    /// stage: a leading projection plays the paper's "before-CR" role
    /// (`JL_BEFORE` stream, Lemma 4.1 dimension), later ones the
    /// "after" role (`JL_AFTER` stream, Lemma 4.2 dimension), and any
    /// further projections get fresh derived streams.
    pub fn next_stream(&mut self) -> (u64, bool) {
        let (stream, before_role) = if !self.any_reduction && self.jl_count == 0 {
            (seeds::JL_BEFORE, true)
        } else if !self.jl_after_used {
            self.jl_after_used = true;
            (seeds::JL_AFTER, false)
        } else {
            (seeds::JL_EXTRA_BASE + self.jl_count as u64, false)
        };
        self.jl_count += 1;
        (stream, before_role)
    }
}

/// The state a stage list transforms: per-source working points, the
/// summary triple once a CR stage has run, the pending basis, and the
/// projection chain the server will invert. (The bit ledger lives in the
/// [`Transport`]'s counters and links.)
///
/// Crate-private: stages are the only writers, and the engine's public
/// surface is the stage list itself.
#[derive(Debug, Clone)]
pub(crate) struct SummaryState<'a> {
    /// Per-source working point sets, in the current working space
    /// (borrowed until the first stage that replaces them).
    pub parts: Vec<Cow<'a, Matrix>>,
    /// Per-source coreset weights, parallel to `parts` (set by a CR
    /// stage: FSS fills one entry, `stream` one per source).
    pub weights: Option<Vec<Vec<f64>>>,
    /// Per-source additive coreset constants Δ (parallel to `parts`
    /// whenever `weights` is set).
    pub deltas: Vec<f64>,
    /// The *server's* copy of the working-space basis (FSS basis after
    /// transmission, disPCA global basis at full precision) — what the
    /// final center lift goes through.
    pub basis: Option<Matrix>,
    /// The *sources'* copy of the same basis — what `lift_out_of_basis`
    /// re-expands coordinates through. For FSS the two copies are the
    /// same matrix; after disPCA the sources hold the basis exactly as
    /// decoded from the wire (at F32 precision, the rounded one — what a
    /// real edge device would have).
    pub source_basis: Option<Matrix>,
    /// Whether the basis is already known to the server (disPCA
    /// broadcasts it; an FSS basis must be uplinked at transmission).
    pub basis_shared: bool,
    /// JL projections applied so far, in application order; the server
    /// lifts through their pseudo-inverses in reverse.
    pub projections: Vec<MaybeProjection>,
    /// Wire quantizer armed by a QT stage, applied to subsequent
    /// coreset-point transmissions.
    pub quantizer: Option<RoundingQuantizer>,
    /// The merged summary once it lives at the server (set by disSS).
    pub server_summary: Option<(Matrix, Vec<f64>)>,
    /// Positional JL bookkeeping.
    jl: JlBook,
    /// Accumulated per-source compute seconds (max over sources per
    /// phase, summed over phases).
    source_seconds: f64,
    /// Accumulated server compute seconds.
    server_seconds: f64,
    /// Accumulated deterministic per-source operation count (max over
    /// sources per phase, summed over phases — see [`complexity`]).
    source_ops: u64,
}

impl<'a> SummaryState<'a> {
    fn new(parts: Vec<Cow<'a, Matrix>>) -> Self {
        SummaryState {
            parts,
            weights: None,
            deltas: Vec::new(),
            basis: None,
            source_basis: None,
            basis_shared: false,
            projections: Vec::new(),
            quantizer: None,
            server_summary: None,
            jl: JlBook::default(),
            source_seconds: 0.0,
            server_seconds: 0.0,
            source_ops: 0,
        }
    }

    /// Dimensionality of the current working space.
    fn dim(&self) -> usize {
        self.parts.first().map_or(0, |p| p.cols())
    }

    fn require_source_side(&self) -> Result<()> {
        if self.server_summary.is_some() {
            return Err(CoreError::InvalidConfig {
                reason: "no stage may follow disss: the summary already lives at the server",
            });
        }
        Ok(())
    }

    /// Re-expresses coordinate parts in their parent space and drops the
    /// basis (what a stage that needs plain points does first). The
    /// expansion uses the *sources'* copy of the basis — that is the one
    /// the data holders actually possess.
    fn lift_out_of_basis(&mut self) -> Result<()> {
        if let Some(basis) = self.source_basis.take() {
            for part in &mut self.parts {
                *part = Cow::Owned(ops::matmul_transb(part.as_ref(), &basis)?);
            }
            self.basis = None;
            self.basis_shared = false;
        }
        Ok(())
    }

    /// Fingerprint of every upstream bit a source-side stage can
    /// observe: the working parts, coreset weights/Δs, basis, and the
    /// positional JL bookkeeping. The armed quantizer and the projection
    /// chain are deliberately excluded — neither feeds the cacheable
    /// stages' computation, which is exactly what lets compositions that
    /// differ only in QT width share a cached prefix.
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_usize(self.parts.len());
        for part in &self.parts {
            h.write_matrix(part.as_ref());
        }
        match &self.weights {
            None => h.write_bool(false),
            Some(all) => {
                h.write_bool(true);
                h.write_usize(all.len());
                for w in all {
                    h.write_f64s(w);
                }
            }
        }
        h.write_f64s(&self.deltas);
        for basis in [&self.basis, &self.source_basis] {
            match basis {
                None => h.write_bool(false),
                Some(b) => {
                    h.write_bool(true);
                    h.write_matrix(b);
                }
            }
        }
        h.write_bool(self.basis_shared);
        h.write_usize(self.jl.jl_count);
        h.write_bool(self.jl.jl_after_used);
        h.write_bool(self.jl.any_reduction);
        h.finish()
    }

    /// Replaces the stage-owned state with a cached snapshot (the
    /// lookup key guarantees the upstream state matches bit for bit).
    /// The cold run's recorded compute charges — the deterministic op
    /// count and the wall-clock seconds — are replayed too, so cached
    /// sweeps report source timings comparable to uncached ones.
    fn apply_snapshot(&mut self, snap: StageSnapshot) {
        self.parts = snap.parts.into_iter().map(Cow::Owned).collect();
        self.weights = snap.weights;
        self.deltas = snap.deltas;
        self.basis = snap.basis;
        self.source_basis = snap.source_basis;
        self.basis_shared = snap.basis_shared;
        self.projections.extend(snap.appended_projections);
        self.jl = snap.jl;
        self.source_ops += snap.ops_delta;
        self.source_seconds += snap.seconds_delta;
    }

    /// Captures the state delta the stage just produced, for storage.
    fn snapshot(
        &self,
        projections_before: usize,
        ops_before: u64,
        seconds_before: f64,
    ) -> StageSnapshot {
        StageSnapshot {
            parts: self.parts.iter().map(|p| p.as_ref().clone()).collect(),
            weights: self.weights.clone(),
            deltas: self.deltas.clone(),
            basis: self.basis.clone(),
            source_basis: self.source_basis.clone(),
            basis_shared: self.basis_shared,
            appended_projections: self.projections[projections_before..].to_vec(),
            jl: self.jl.clone(),
            ops_delta: self.source_ops - ops_before,
            seconds_delta: self.source_seconds - seconds_before,
        }
    }
}

/// A summary pipeline as an ordered stage list, executed by the one
/// generic engine (the unification of the former hand-written
/// `CentralizedPipeline`/`DistributedPipeline` implementations).
#[derive(Debug, Clone)]
pub struct StagePipeline {
    stages: Vec<Stage>,
    params: SummaryParams,
    name: Option<String>,
    parallel: bool,
}

impl StagePipeline {
    /// Builds a pipeline from an explicit stage list.
    pub fn new(stages: Vec<Stage>, params: SummaryParams) -> Self {
        StagePipeline {
            stages,
            params,
            name: None,
            parallel: true,
        }
    }

    /// Builds a pipeline from a comma-separated stage list
    /// (`"jl,fss,qt"`).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidStageName`] for unknown tokens.
    pub fn from_names(list: &str, params: SummaryParams) -> Result<Self> {
        Ok(StagePipeline::new(Stage::parse_list(list)?, params))
    }

    /// Overrides the display name (the canned paper pipelines use their
    /// legend names, e.g. "BKLW" instead of "disPCA+disSS").
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Enables or disables concurrent per-source execution (on by
    /// default; results are bit-identical either way).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// The stage list.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The shared parameters.
    pub fn params(&self) -> &SummaryParams {
        &self.params
    }

    /// `true` if any stage runs an interactive multi-source protocol.
    pub fn is_distributed(&self) -> bool {
        self.stages.iter().any(Stage::is_distributed)
    }

    /// Display name: the override if set, else the stage tokens joined
    /// paper-legend style (`"JL+FSS+QT"`, empty list → `"NR"`).
    pub fn name(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => display_name(&self.stages),
        }
    }

    /// Runs the pipeline on a single data source, charging all traffic
    /// to source 0 of `net` (any [`Transport`]: the in-process
    /// simulation or a socket backend).
    ///
    /// # Errors
    ///
    /// Propagates configuration, numeric, and protocol failures.
    pub fn run<T: Transport>(&self, data: &Matrix, net: &mut T) -> Result<RunOutput> {
        self.run_parts(vec![Cow::Borrowed(data)], net, None)
    }

    /// Runs the pipeline over per-source shards (one per data source;
    /// all shards share a dimensionality).
    ///
    /// # Errors
    ///
    /// Propagates configuration, numeric, and protocol failures.
    pub fn run_shards<T: Transport>(&self, shards: &[Matrix], net: &mut T) -> Result<RunOutput> {
        self.run_parts(shards.iter().map(Cow::Borrowed).collect(), net, None)
    }

    /// [`StagePipeline::run`] with stage-output memoization: source-side
    /// stage outputs are looked up in (and stored into) `cache`, so
    /// sweeps whose compositions share a prefix compute it once. Outputs
    /// and bit accounting are bit-identical to an uncached run.
    ///
    /// # Errors
    ///
    /// Propagates configuration, numeric, and protocol failures.
    pub fn run_cached<T: Transport>(
        &self,
        data: &Matrix,
        net: &mut T,
        cache: &mut StageCache,
    ) -> Result<RunOutput> {
        self.run_parts(vec![Cow::Borrowed(data)], net, Some(cache))
    }

    /// [`StagePipeline::run_shards`] with stage-output memoization (see
    /// [`StagePipeline::run_cached`]).
    ///
    /// # Errors
    ///
    /// Propagates configuration, numeric, and protocol failures.
    pub fn run_shards_cached<T: Transport>(
        &self,
        shards: &[Matrix],
        net: &mut T,
        cache: &mut StageCache,
    ) -> Result<RunOutput> {
        self.run_parts(shards.iter().map(Cow::Borrowed).collect(), net, Some(cache))
    }

    fn run_parts<T: Transport>(
        &self,
        parts: Vec<Cow<'_, Matrix>>,
        net: &mut T,
        mut cache: Option<&mut StageCache>,
    ) -> Result<RunOutput> {
        if parts.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "no shards",
            });
        }
        let d = parts[0].cols();
        if parts.iter().any(|p| p.cols() != d) {
            return Err(CoreError::InvalidConfig {
                reason: "shards disagree on dimensionality",
            });
        }
        let total_n: usize = parts.iter().map(|p| p.rows()).sum();
        self.params.validate(total_n, d)?;

        let up0 = net.stats().total_uplink_bits();
        let down0 = net.stats().total_downlink_bits();

        let mut state = SummaryState::new(parts);
        for stage in &self.stages {
            // Source-side stages (`jl`, `fss`, `stream`) are pure,
            // seed-deterministic functions of (config, params, upstream
            // state) that never touch the transport — exactly the stages
            // a cache may replay. Interactive stages and everything
            // after a disSS handoff always run live.
            let cacheable = matches!(stage, Stage::Dr(_) | Stage::Cr(_) | Stage::Stream(_))
                && state.server_summary.is_none();
            if let (true, Some(cache)) = (cacheable, cache.as_deref_mut()) {
                let key = self.stage_key(stage, state.fingerprint());
                if let Some(snap) = cache.lookup(key) {
                    state.apply_snapshot(snap);
                    continue;
                }
                let projections_before = state.projections.len();
                let ops_before = state.source_ops;
                let seconds_before = state.source_seconds;
                self.apply_stage(stage, &mut state, net)?;
                cache.store(
                    key,
                    state.snapshot(projections_before, ops_before, seconds_before),
                );
                continue;
            }
            self.apply_stage(stage, &mut state, net)?;
        }

        self.finalize(state, net, up0, down0)
    }

    /// Key of one cacheable stage execution: the stage configuration,
    /// every parameter knob its computation reads, and the upstream
    /// state fingerprint.
    fn stage_key(&self, stage: &Stage, state_fp: u64) -> u64 {
        let p = &self.params;
        let mut h = Fnv::new();
        h.write_str(&format!("{stage:?}"));
        h.write_usize(p.k);
        h.write_u64(p.epsilon.to_bits());
        h.write_usize(p.coreset_size);
        h.write_usize(p.pca_dim);
        h.write_usize(p.jl_dim_before);
        h.write_usize(p.jl_dim_after);
        h.write_str(&format!("{:?}", p.jl_kind));
        h.write_u64(p.seed);
        h.write_usize(p.stream_leaf_size);
        h.write_str(p.compute.as_str());
        h.write_u64(state_fp);
        h.finish()
    }

    /// Executes one stage against the summary state.
    fn apply_stage<T: Transport>(
        &self,
        stage: &Stage,
        state: &mut SummaryState<'_>,
        net: &mut T,
    ) -> Result<()> {
        match stage {
            Stage::Dr(cfg) => self.apply_jl(cfg, state)?,
            Stage::Cr(cfg) => self.apply_fss(cfg, state)?,
            Stage::Stream(cfg) => self.apply_stream(cfg, state)?,
            Stage::Qt(cfg) => {
                state.require_source_side()?;
                state.quantizer = Some(resolve_quantizer(cfg, &self.params)?);
            }
            Stage::DisPca(cfg) => {
                state.require_source_side()?;
                if state.weights.is_some() {
                    return Err(CoreError::InvalidConfig {
                        reason: "dispca after a coreset stage is unsupported",
                    });
                }
                state.lift_out_of_basis()?;
                let t = dispca_rank(cfg, &self.params, state.dim());
                let out = distributed::dispca_opts(
                    &state.parts,
                    t,
                    net,
                    self.parallel,
                    self.params.precision,
                )?;
                state.parts = out.coords.into_iter().map(Cow::Owned).collect();
                state.basis = Some(out.basis);
                state.source_basis = Some(out.decoded_basis);
                state.basis_shared = true;
                state.jl.any_reduction = true;
                state.source_seconds += out.source_seconds;
                state.server_seconds += out.server_seconds;
                state.source_ops += out.source_ops;
            }
            Stage::DisSs(cfg) => {
                state.require_source_side()?;
                if state.weights.is_some() {
                    return Err(CoreError::InvalidConfig {
                        reason: "disss after a coreset stage is unsupported",
                    });
                }
                let budget = disss_budget(cfg, &self.params);
                let out = distributed::disss_opts(
                    &state.parts,
                    self.params.k,
                    budget,
                    derive_seed(self.params.seed, seeds::FSS),
                    state.quantizer.as_ref(),
                    net,
                    self.parallel,
                    self.params.precision,
                    self.params.compute,
                )?;
                state.server_summary =
                    Some((out.coreset.points().clone(), out.coreset.weights().to_vec()));
                state.parts.clear();
                state.jl.any_reduction = true;
                state.source_seconds += out.source_seconds;
                state.server_seconds += out.server_seconds;
                state.source_ops += out.source_ops;
            }
        }
        Ok(())
    }

    /// DR stage: seeded JL projection of every part (zero communication;
    /// source and server regenerate the matrix from the shared seed).
    fn apply_jl(&self, cfg: &JlStage, state: &mut SummaryState<'_>) -> Result<()> {
        state.require_source_side()?;
        state.lift_out_of_basis()?;
        let cur = state.dim();
        let (stream, before_role) = state.jl.next_stream();
        let target = jl_target_dim(cfg, &self.params, cur, before_role);
        let pi = MaybeProjection::generate(
            self.params.jl_kind,
            cur,
            target,
            derive_seed(self.params.seed, stream),
        );
        let projected = par_map(&state.parts, self.parallel, |_i, part| {
            let t0 = Instant::now();
            let p = pi.project(part.as_ref())?;
            Ok((p, t0.elapsed().as_secs_f64()))
        })?;
        state.source_ops += state
            .parts
            .iter()
            .map(|p| complexity::matmul(p.rows(), cur, target))
            .max()
            .unwrap_or(0);
        let mut phase = 0.0f64;
        state.parts = projected
            .into_iter()
            .map(|(p, secs)| {
                phase = phase.max(secs);
                Cow::Owned(p)
            })
            .collect();
        state.projections.push(pi);
        state.jl.any_reduction = true;
        state.source_seconds += phase;
        Ok(())
    }

    /// CR stage: FSS coreset of the (single) source's working points.
    fn apply_fss(&self, cfg: &FssStage, state: &mut SummaryState<'_>) -> Result<()> {
        state.require_source_side()?;
        if state.parts.len() != 1 {
            return Err(CoreError::InvalidConfig {
                reason: "fss is a single-source stage (multi-source pipelines use dispca/disss)",
            });
        }
        if state.weights.is_some() {
            return Err(CoreError::InvalidConfig {
                reason: "multiple coreset stages in one pipeline",
            });
        }
        let t0 = Instant::now();
        state.lift_out_of_basis()?;
        let cur = state.dim();
        let (t, size) = fss_dims(cfg, &self.params, cur);
        state.source_ops += complexity::fss(state.parts[0].rows(), cur, self.params.k);
        let fss = FssBuilder::new(self.params.k)
            .with_pca_dim(t)
            .with_sample_size(size)
            .with_seed(derive_seed(self.params.seed, seeds::FSS))
            .with_compute(self.params.compute)
            .build(state.parts[0].as_ref())?;
        state.parts[0] = Cow::Owned(fss.coordinates().clone());
        state.weights = Some(vec![fss.weights().to_vec()]);
        state.deltas = vec![fss.delta()];
        let basis = fss.basis().clone();
        state.basis = Some(basis.clone());
        state.source_basis = Some(basis);
        state.basis_shared = false;
        state.jl.any_reduction = true;
        state.source_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    /// Streaming CR stage: every source feeds its shard through a
    /// merge-and-reduce [`StreamingCoreset`] on the scoped-thread fan-out
    /// and finalizes a bounded weighted summary. The global sample budget
    /// is split evenly across the sources (disSS-style), and each
    /// source's randomness comes from its own derived seed stream, so
    /// results are bit-identical under any scheduling.
    fn apply_stream(&self, cfg: &StreamStage, state: &mut SummaryState<'_>) -> Result<()> {
        state.require_source_side()?;
        if state.weights.is_some() {
            return Err(CoreError::InvalidConfig {
                reason: "multiple coreset stages in one pipeline",
            });
        }
        let m = state.parts.len();
        let k = self.params.k;
        let (leaf, per_source) = stream_plan(cfg, &self.params, m);
        let stream_seed = derive_seed(self.params.seed, seeds::STREAM);
        let streamed = par_map(&state.parts, self.parallel, |i, part| {
            let t0 = Instant::now();
            let mut stream = StreamingCoreset::new(k, leaf, per_source)
                .with_seed(derive_seed(stream_seed, i as u64))
                .with_compute(self.params.compute);
            // push_batch buffers row by row and flushes a leaf whenever
            // the buffer fills, so one call is bit-identical to feeding
            // leaf-sized bursts.
            stream
                .push_batch(part.as_ref())
                .map_err(CoreError::Coreset)?;
            let coreset = stream.finalize_reduced().map_err(CoreError::Coreset)?;
            Ok((coreset, t0.elapsed().as_secs_f64()))
        })?;
        state.source_ops += state
            .parts
            .iter()
            .map(|p| complexity::stream(p.rows(), p.cols(), k, leaf))
            .max()
            .unwrap_or(0);
        let mut phase = 0.0f64;
        let mut parts = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        let mut deltas = Vec::with_capacity(m);
        for (coreset, secs) in streamed {
            phase = phase.max(secs);
            let (points, w, delta) = coreset.into_parts();
            parts.push(Cow::Owned(points));
            weights.push(w);
            deltas.push(delta);
        }
        state.parts = parts;
        state.weights = Some(weights);
        state.deltas = deltas;
        state.jl.any_reduction = true;
        state.source_seconds += phase;
        Ok(())
    }

    /// Ships whatever the sources still hold to the server and returns
    /// the (decoded) points and weights the server will cluster.
    fn transmit<T: Transport>(
        &self,
        state: &mut SummaryState,
        net: &mut T,
    ) -> Result<(Matrix, Vec<f64>)> {
        let mut links = net.take_links(state.parts.len())?;

        // An FSS basis travels first (disPCA's was already broadcast).
        // The source uplinks *its* copy; the server's copy becomes the
        // decoded one — exactly what it will lift the centers through.
        if let Some(basis) = &state.source_basis {
            if !state.basis_shared {
                let msg = Message::Basis {
                    basis: basis.clone(),
                    precision: self.params.precision,
                };
                let decoded = expect_basis(links[0].send_to_server(&msg)?)?;
                state.basis = Some(decoded);
                state.basis_shared = true;
            }
        }

        // Only summary *construction* (quantization, payload assembly)
        // counts as source compute; the encode/decode round and the
        // server-side stacking below do not.
        let result = match state.weights.take() {
            // Per-source weighted coresets (FSS's single source, or one
            // streamed summary per source): each source ships its
            // `(S_i, w_i, Δ_i)` concurrently, and the server stacks the
            // decoded blocks in source order.
            Some(all_weights) => {
                let quantizer = state.quantizer;
                if quantizer.is_some() {
                    state.source_ops += state
                        .parts
                        .iter()
                        .map(|p| complexity::quantize(p.rows(), p.cols()))
                        .max()
                        .unwrap_or(0);
                }
                let deltas = std::mem::take(&mut state.deltas);
                let aux = self.params.precision;
                let parts = std::mem::take(&mut state.parts);
                let decoded = par_map_owned(
                    parts
                        .into_iter()
                        .zip(all_weights)
                        .zip(links.iter_mut())
                        .collect(),
                    self.parallel,
                    |i, ((part, w), link): ((Cow<'_, Matrix>, Vec<f64>), &mut T::Link)| {
                        let t0 = Instant::now();
                        let (wire, precision) =
                            quantize_for_wire(part.as_ref(), quantizer.as_ref());
                        let msg = Message::Coreset {
                            points: wire,
                            weights: w,
                            delta: deltas[i],
                            precision,
                            weights_precision: aux,
                        };
                        let secs = t0.elapsed().as_secs_f64();
                        let (points, w, _delta) = expect_coreset(link.send_to_server(&msg)?)?;
                        Ok(((points, w), secs))
                    },
                )?;
                let mut phase = 0.0f64;
                let mut weights = Vec::new();
                let mut blocks = Vec::with_capacity(decoded.len());
                for ((points, w), secs) in decoded {
                    phase = phase.max(secs);
                    weights.extend(w);
                    blocks.push(points);
                }
                state.source_seconds += phase;
                let t1 = Instant::now();
                let stacked = Matrix::vstack_all(blocks.iter())?;
                state.server_seconds += t1.elapsed().as_secs_f64();
                (stacked, weights)
            }
            // No CR ran: every source ships its working points raw (or
            // grid-aligned, when a QT stage armed the quantizer), and the
            // server stacks them with unit weights. The parts are *moved*
            // into their messages — transmission is their last use.
            None => {
                let quantizer = state.quantizer;
                let aux = self.params.precision;
                if quantizer.is_some() {
                    state.source_ops += state
                        .parts
                        .iter()
                        .map(|p| complexity::quantize(p.rows(), p.cols()))
                        .max()
                        .unwrap_or(0);
                }
                let parts = std::mem::take(&mut state.parts);
                let decoded = par_map_owned(
                    parts.into_iter().zip(links.iter_mut()).collect(),
                    self.parallel,
                    |_i, (part, link): (Cow<'_, Matrix>, &mut T::Link)| {
                        let t0 = Instant::now();
                        let msg = match &quantizer {
                            Some(q) => {
                                let (wire, precision) = quantize_for_wire(part.as_ref(), Some(q));
                                Message::Coreset {
                                    points: wire,
                                    weights: vec![1.0; part.rows()],
                                    delta: 0.0,
                                    precision,
                                    weights_precision: aux,
                                }
                            }
                            // An owned part moves into its message; only
                            // still-borrowed inputs (NR) pay the one clone
                            // the wire inherently needs.
                            None => Message::RawData {
                                points: part.into_owned(),
                            },
                        };
                        let secs = t0.elapsed().as_secs_f64();
                        match link.send_to_server(&msg)? {
                            Message::RawData { points } => Ok(((points, None), secs)),
                            Message::Coreset {
                                points, weights, ..
                            } => Ok(((points, Some(weights)), secs)),
                            _ => Err(CoreError::Protocol {
                                reason: "expected raw data or a coreset",
                            }),
                        }
                    },
                )?;
                let mut phase = 0.0f64;
                let mut weights = Vec::new();
                let mut blocks = Vec::with_capacity(decoded.len());
                for ((points, w), secs) in decoded {
                    phase = phase.max(secs);
                    weights.extend(w.unwrap_or_else(|| vec![1.0; points.rows()]));
                    blocks.push(points);
                }
                state.source_seconds += phase;
                let t1 = Instant::now();
                let stacked = Matrix::vstack_all(blocks.iter())?;
                state.server_seconds += t1.elapsed().as_secs_f64();
                (stacked, weights)
            }
        };
        net.absorb_links(links);
        Ok(result)
    }

    /// The shared tail of every pipeline: weighted k-means at the
    /// server, then the lift back through basis and projection chain.
    fn finalize<T: Transport>(
        &self,
        mut state: SummaryState<'_>,
        net: &mut T,
        up0: u64,
        down0: u64,
    ) -> Result<RunOutput> {
        let (points, weights) = match state.server_summary.take() {
            Some(summary) => summary,
            None => self.transmit(&mut state, net)?,
        };

        let t1 = Instant::now();
        let centers_summary = solve_weighted_kmeans(
            &points,
            &weights,
            self.params.k,
            self.params.kmeans_restarts,
            derive_seed(self.params.seed, seeds::SERVER),
            self.params.solver_shards,
            self.params.compute,
        )?;
        let mut centers = match &state.basis {
            Some(basis) => lift_centers_through_basis(&centers_summary, basis)?,
            None => centers_summary,
        };
        for pi in state.projections.iter().rev() {
            centers = pi.lift(&centers)?;
        }
        state.server_seconds += t1.elapsed().as_secs_f64();

        Ok(RunOutput {
            centers,
            uplink_bits: net.stats().total_uplink_bits() - up0,
            downlink_bits: net.stats().total_downlink_bits() - down0,
            source_seconds: state.source_seconds,
            server_seconds: state.server_seconds,
            source_ops: state.source_ops,
            summary_points: points.rows(),
            degraded: None,
            recovered: None,
        })
    }
}

/// The one chunked scoped-thread mapper every parallel phase goes
/// through: consumes the items (ownership subsumes the by-ref and
/// by-mut cases — see [`par_map`] / [`par_map_sources`]), runs one
/// worker per chunk when `parallel` holds, preserves item order, and
/// surfaces errors deterministically (the lowest-index failure wins).
pub(crate) fn par_map_owned<I, T, F>(items: Vec<I>, parallel: bool, f: F) -> Result<Vec<T>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> Result<T> + Sync,
{
    let m = items.len();
    if !parallel || m <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, it)| f(i, it))
            .collect();
    }
    let chunk = m.div_ceil(ekm_linalg::parallel::worker_count().min(m));
    let mut slots: Vec<Option<Result<T>>> = (0..m).map(|_| None).collect();
    std::thread::scope(|scope| {
        let fref = &f;
        let mut rest_items = items;
        let mut rest_slots: &mut [Option<Result<T>>] = &mut slots;
        let mut base = 0;
        while !rest_items.is_empty() {
            let take = chunk.min(rest_items.len());
            let tail = rest_items.split_off(take);
            let chunk_items = std::mem::replace(&mut rest_items, tail);
            let (chunk_slots, slot_tail) = std::mem::take(&mut rest_slots).split_at_mut(take);
            rest_slots = slot_tail;
            let start = base;
            base += take;
            scope.spawn(move || {
                for (j, (item, slot)) in chunk_items.into_iter().zip(chunk_slots).enumerate() {
                    *slot = Some(fref(start + j, item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// [`par_map_owned`] over borrowed items.
pub(crate) fn par_map<I, T, F>(items: &[I], parallel: bool, f: F) -> Result<Vec<T>>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> Result<T> + Sync,
{
    par_map_owned(items.iter().collect(), parallel, f)
}

/// [`par_map`] pairing each source's item with its [`TransportLink`], so
/// protocol phases can transmit concurrently with exact per-source
/// accounting (merged by the caller via [`Transport::absorb_links`]).
pub(crate) fn par_map_sources<I, L, T, F>(
    parts: &[I],
    links: &mut [L],
    parallel: bool,
    f: F,
) -> Result<Vec<T>>
where
    I: Sync,
    L: TransportLink + Send,
    T: Send,
    F: Fn(usize, &I, &mut L) -> Result<T> + Sync,
{
    assert_eq!(parts.len(), links.len(), "one link per source");
    par_map_owned(
        parts.iter().zip(links.iter_mut()).collect(),
        parallel,
        |i, (part, link)| f(i, part, link),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_data::partition::partition_uniform;
    use ekm_data::synth::GaussianMixture;
    use ekm_net::Network;

    fn workload(n: usize, d: usize, seed: u64) -> Matrix {
        let raw = GaussianMixture::new(n, d, 2)
            .with_separation(4.0)
            .with_cluster_std(1.0)
            .with_seed(seed)
            .generate()
            .unwrap()
            .points;
        ekm_data::normalize::normalize_paper(&raw).0
    }

    fn params(n: usize, d: usize) -> SummaryParams {
        SummaryParams::practical(2, n, d).with_seed(11)
    }

    #[test]
    fn empty_stage_list_is_no_reduction() {
        let data = workload(300, 12, 1);
        let p = params(300, 12);
        let pipe = StagePipeline::new(vec![], p);
        assert_eq!(pipe.name(), "NR");
        let mut net = Network::new(1);
        let out = pipe.run(&data, &mut net).unwrap();
        assert_eq!(out.centers.shape(), (2, 12));
        assert_eq!(out.summary_points, 300);
        // Raw upload: about n·d doubles plus framing.
        assert!(out.uplink_bits as usize > 300 * 12 * 64);
    }

    #[test]
    fn novel_composition_runs_end_to_end() {
        // jl,fss,qt,jl — a point in the composition space the paper
        // never evaluated (quantize, then project again).
        let data = workload(500, 40, 2);
        let p = params(500, 40);
        let pipe = StagePipeline::from_names("jl,fss,qt,jl", p).unwrap();
        assert_eq!(pipe.name(), "JL+FSS+QT+JL");
        let mut net = Network::new(1);
        let out = pipe.run(&data, &mut net).unwrap();
        assert_eq!(out.centers.shape(), (2, 40));
        assert!(out.centers.as_slice().iter().all(|v| v.is_finite()));
        assert!(out.summary_points < 500);
    }

    #[test]
    fn qt_only_pipeline_quantizes_raw_upload() {
        let data = workload(200, 10, 3);
        let p = params(200, 10);
        let mut net = Network::new(1);
        let nr = StagePipeline::new(vec![], p.clone())
            .run(&data, &mut net)
            .unwrap();
        let qt = StagePipeline::from_names("qt:8", p).unwrap();
        let out = qt.run(&data, &mut net).unwrap();
        assert_eq!(out.summary_points, 200);
        assert!(
            out.uplink_bits < nr.uplink_bits / 2,
            "qt-only {} vs raw {}",
            out.uplink_bits,
            nr.uplink_bits
        );
    }

    #[test]
    fn cached_runs_are_bit_identical_and_reuse_shared_prefixes() {
        let data = workload(500, 24, 21);
        let p = params(500, 24);
        let mut cache = StageCache::new();
        for list in ["jl,fss,qt:4", "jl,fss,qt:8", "jl,fss,qt:8,jl"] {
            let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
            let mut net_cold = Network::new(1);
            let cold = pipe.run(&data, &mut net_cold).unwrap();
            let mut net_hot = Network::new(1);
            let hot = pipe.run_cached(&data, &mut net_hot, &mut cache).unwrap();
            assert!(cold.centers.approx_eq(&hot.centers, 0.0), "{list}");
            assert_eq!(cold.uplink_bits, hot.uplink_bits, "{list}");
            assert_eq!(cold.downlink_bits, hot.downlink_bits, "{list}");
            assert_eq!(cold.source_ops, hot.source_ops, "{list}");
            assert_eq!(cold.summary_points, hot.summary_points, "{list}");
            assert_eq!(net_cold.stats(), net_hot.stats(), "{list}");
        }
        // The jl,fss prefix ran once; the second and third compositions
        // replayed it, and only the third's trailing jl ran cold.
        assert_eq!(cache.misses(), 3, "jl, fss, trailing jl");
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn upstream_quantizer_does_not_split_cache_entries() {
        // QT only arms the wire quantizer, which the cacheable stages
        // never read — so fss after qt:4 and after qt:8 share one entry.
        let data = workload(300, 14, 22);
        let p = params(300, 14);
        let mut cache = StageCache::new();
        for list in ["qt:4,fss", "qt:8,fss"] {
            let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
            let mut net = Network::new(1);
            pipe.run_cached(&data, &mut net, &mut cache).unwrap();
        }
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn cached_stream_shards_match_uncached() {
        let data = workload(1000, 16, 23);
        let shards = partition_uniform(&data, 4, 6).unwrap();
        let p = params(1000, 16).with_coreset_size(90);
        let pipe = StagePipeline::from_names("jl,stream,qt", p).unwrap();
        let mut net_cold = Network::new(4);
        let cold = pipe.run_shards(&shards, &mut net_cold).unwrap();
        let mut cache = StageCache::new();
        let mut net_hot = Network::new(4);
        let hot = pipe
            .run_shards_cached(&shards, &mut net_hot, &mut cache)
            .unwrap();
        assert!(cold.centers.approx_eq(&hot.centers, 0.0));
        assert_eq!(cold.uplink_bits, hot.uplink_bits);
        assert_eq!(net_cold.stats(), net_hot.stats());
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // A second cached run replays both cacheable stages.
        let mut net_again = Network::new(4);
        let again = pipe
            .run_shards_cached(&shards, &mut net_again, &mut cache)
            .unwrap();
        assert!(cold.centers.approx_eq(&again.centers, 0.0));
        assert_eq!(cold.source_ops, again.source_ops);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn cache_misses_on_different_seed_or_data() {
        let data = workload(250, 10, 24);
        let pipe = |seed: u64| {
            StagePipeline::from_names("jl,fss", params(250, 10).with_seed(seed)).unwrap()
        };
        let mut cache = StageCache::new();
        let mut net = Network::new(1);
        pipe(1).run_cached(&data, &mut net, &mut cache).unwrap();
        pipe(2).run_cached(&data, &mut net, &mut cache).unwrap();
        assert_eq!(cache.hits(), 0, "different seed must not hit");
        let other = workload(250, 10, 25);
        pipe(1).run_cached(&other, &mut net, &mut cache).unwrap();
        assert_eq!(cache.hits(), 0, "different data must not hit");
        assert_eq!(cache.misses(), 6);
    }

    #[test]
    fn parallel_and_sequential_are_bit_identical() {
        let data = workload(600, 30, 4);
        let shards = partition_uniform(&data, 6, 9).unwrap();
        let p = params(600, 30);
        let stages = Stage::parse_list("jl,dispca,disss").unwrap();
        let par = StagePipeline::new(stages.clone(), p.clone());
        let seq = StagePipeline::new(stages, p).with_parallel(false);
        let mut net_a = Network::new(6);
        let a = par.run_shards(&shards, &mut net_a).unwrap();
        let mut net_b = Network::new(6);
        let b = seq.run_shards(&shards, &mut net_b).unwrap();
        assert!(a.centers.approx_eq(&b.centers, 0.0));
        assert_eq!(a.uplink_bits, b.uplink_bits);
        assert_eq!(a.downlink_bits, b.downlink_bits);
        assert_eq!(net_a.stats(), net_b.stats());
    }

    #[test]
    fn per_source_accounting_is_exact_under_parallelism() {
        let data = workload(800, 16, 5);
        let shards = partition_uniform(&data, 8, 10).unwrap();
        let p = params(800, 16);
        let pipe = StagePipeline::from_names("dispca,disss", p).unwrap();
        let mut net = Network::new(8);
        let out = pipe.run_shards(&shards, &mut net).unwrap();
        let per_source: u64 = (0..8).map(|i| net.stats().uplink_bits(i)).sum();
        assert_eq!(out.uplink_bits, per_source);
        assert!((0..8).all(|i| net.stats().uplink_bits(i) > 0));
        let by_kind_total: u64 = net.stats().uplink_bits_by_kind().values().sum();
        assert_eq!(by_kind_total, out.uplink_bits);
    }

    #[test]
    fn stream_stage_summarizes_every_source() {
        let data = workload(1200, 18, 12);
        let shards = partition_uniform(&data, 4, 7).unwrap();
        let p = params(1200, 18).with_coreset_size(120);
        let pipe = StagePipeline::from_names("jl,stream,qt", p).unwrap();
        assert!(pipe.is_distributed(), "stream shards like disPCA/disSS");
        let mut net = Network::new(4);
        let out = pipe.run_shards(&shards, &mut net).unwrap();
        assert_eq!(out.centers.shape(), (2, 18));
        assert!(out.centers.as_slice().iter().all(|v| v.is_finite()));
        // Each source shipped a bounded summary, not its shard.
        assert!(out.summary_points < 1200 / 2, "{}", out.summary_points);
        assert!((0..4).all(|i| net.stats().uplink_bits(i) > 0));
        assert!(out.source_ops > 0);
    }

    #[test]
    fn stream_parallel_and_sequential_bit_identical() {
        let data = workload(900, 14, 13);
        let shards = partition_uniform(&data, 3, 5).unwrap();
        let p = params(900, 14);
        let stages = Stage::parse_list("stream,jl").unwrap();
        let par = StagePipeline::new(stages.clone(), p.clone());
        let seq = StagePipeline::new(stages, p).with_parallel(false);
        let mut net_a = Network::new(3);
        let a = par.run_shards(&shards, &mut net_a).unwrap();
        let mut net_b = Network::new(3);
        let b = seq.run_shards(&shards, &mut net_b).unwrap();
        assert!(a.centers.approx_eq(&b.centers, 0.0));
        assert_eq!(a.uplink_bits, b.uplink_bits);
        assert_eq!(a.source_ops, b.source_ops);
        assert_eq!(net_a.stats(), net_b.stats());
    }

    #[test]
    fn stream_composes_only_with_stages_that_accept_weights() {
        let data = workload(400, 10, 14);
        let shards = partition_uniform(&data, 2, 3).unwrap();
        // Accepted downstream: jl, qt (and both together).
        for list in ["stream", "stream,jl", "stream,qt", "jl,stream,jl,qt"] {
            let pipe = StagePipeline::from_names(list, params(400, 10)).unwrap();
            let mut net = Network::new(2);
            let out = pipe.run_shards(&shards, &mut net).unwrap();
            assert_eq!(out.centers.shape(), (2, 10), "{list}");
        }
        // Rejected: a second CR stage or an interactive protocol after
        // the per-source summaries exist (and stream after fss).
        for list in [
            "stream,fss",
            "fss,stream",
            "stream,stream",
            "stream,dispca",
            "stream,disss",
            "disss,stream",
        ] {
            let pipe = StagePipeline::from_names(list, params(400, 10)).unwrap();
            let mut net = Network::new(2);
            assert!(
                matches!(
                    pipe.run_shards(&shards, &mut net),
                    Err(CoreError::InvalidConfig { .. })
                ),
                "{list} accepted"
            );
        }
    }

    #[test]
    fn fss_rejects_multiple_sources() {
        let data = workload(200, 8, 6);
        let shards = partition_uniform(&data, 2, 3).unwrap();
        let pipe = StagePipeline::from_names("fss", params(200, 8)).unwrap();
        let mut net = Network::new(2);
        assert!(matches!(
            pipe.run_shards(&shards, &mut net),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn stages_after_disss_are_rejected() {
        let data = workload(200, 8, 7);
        let shards = partition_uniform(&data, 2, 3).unwrap();
        for list in ["disss,jl", "disss,qt", "disss,fss", "dispca,disss,dispca"] {
            let pipe = StagePipeline::from_names(list, params(200, 8)).unwrap();
            let mut net = Network::new(2);
            assert!(
                matches!(
                    pipe.run_shards(&shards, &mut net),
                    Err(CoreError::InvalidConfig { .. })
                ),
                "{list} accepted"
            );
        }
    }

    #[test]
    fn double_coreset_is_rejected() {
        let data = workload(200, 8, 8);
        let pipe = StagePipeline::from_names("fss,fss", params(200, 8)).unwrap();
        let mut net = Network::new(1);
        assert!(matches!(
            pipe.run(&data, &mut net),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn dispca_alone_ships_coordinates() {
        let data = workload(400, 20, 9);
        let shards = partition_uniform(&data, 4, 5).unwrap();
        let p = params(400, 20).with_pca_dim(4);
        let pipe = StagePipeline::from_names("dispca", p).unwrap();
        let mut net = Network::new(4);
        let out = pipe.run_shards(&shards, &mut net).unwrap();
        assert_eq!(out.centers.shape(), (2, 20));
        assert_eq!(out.summary_points, 400);
        // Coordinates are t-dimensional, so cheaper than the raw upload.
        let raw_bits = 400 * 20 * 64;
        assert!(out.uplink_bits < raw_bits as u64);
    }

    #[test]
    fn name_override_and_derivation() {
        let p = params(100, 10);
        let pipe = StagePipeline::from_names("dispca,disss", p.clone()).unwrap();
        assert_eq!(pipe.name(), "disPCA+disSS");
        assert_eq!(pipe.with_name("BKLW").name(), "BKLW");
        assert!(
            StagePipeline::from_names("jl,fss", p)
                .unwrap()
                .stages()
                .len()
                == 2
        );
    }

    #[test]
    fn par_map_matches_sequential_and_orders_errors() {
        let items: Vec<Matrix> = (0..7).map(|i| Matrix::zeros(i + 1, 2)).collect();
        let seq = par_map(&items, false, |i, m| Ok(i + m.rows())).unwrap();
        let par = par_map(&items, true, |i, m| Ok(i + m.rows())).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, vec![1, 3, 5, 7, 9, 11, 13]);

        let err = par_map(&items, true, |i, _| {
            if i >= 3 {
                Err(CoreError::InvalidConfig { reason: "boom" })
            } else {
                Ok(i)
            }
        });
        assert!(matches!(
            err,
            Err(CoreError::InvalidConfig { reason: "boom" })
        ));
    }
}
