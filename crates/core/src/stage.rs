//! The composable stage vocabulary of the summary engine.
//!
//! The paper's central observation is that a summary is a *composition*:
//! dimensionality reduction (DR), cardinality reduction (CR), and
//! quantization (QT) can be stacked in any order, and the order
//! determines both communication cost and accuracy (§4 "order matters").
//! Algorithms 1–4 are four points in that composition space; a [`Stage`]
//! list names an arbitrary point, and
//! [`StagePipeline`](crate::engine::StagePipeline) executes it.
//!
//! | Token | Stage | Effect on the summary state |
//! |---|---|---|
//! | `jl` | [`Stage::Dr`] | seeded JL projection of the working points (zero communication) |
//! | `fss` | [`Stage::Cr`] | FSS coreset: points → (coordinates, weights, Δ) + a basis to transmit |
//! | `stream` | [`Stage::Stream`] | merge-and-reduce streaming coreset per source (each source summarizes while collecting) |
//! | `qt` | [`Stage::Qt`] | arms the rounding quantizer for subsequent coreset-point transmissions |
//! | `dispca` | [`Stage::DisPca`] | distributed PCA round: local SVD summaries up, global basis down |
//! | `disss` | [`Stage::DisSs`] | distributed sensitivity sampling: the summary moves to the server |

use crate::params::SummaryParams;
use crate::{CoreError, Result};
use ekm_quant::RoundingQuantizer;

/// Default significand bits when a `qt` stage is requested without an
/// explicit width (`qt:<s>`) and the parameters carry no quantizer.
pub const DEFAULT_QT_BITS: u32 = 10;

/// Configuration of a JL (DR) stage.
///
/// The target dimension defaults to the parameters' pre-CR formula for a
/// leading projection and the post-CR formula otherwise (matching
/// Algorithms 1–3); `dim` pins it explicitly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JlStage {
    /// Explicit target dimension (overrides the positional default).
    pub dim: Option<usize>,
}

/// Configuration of an FSS (CR) stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FssStage {
    /// Explicit coreset size (defaults to `SummaryParams::coreset_size`).
    pub sample_size: Option<usize>,
    /// Explicit PCA/intrinsic dimension (defaults to the clamped
    /// `SummaryParams::pca_dim`).
    pub pca_dim: Option<usize>,
}

/// Configuration of a streaming (merge-and-reduce) CR stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStage {
    /// Explicit leaf-buffer size (defaults to
    /// `SummaryParams::stream_leaf_size`).
    pub leaf_size: Option<usize>,
    /// Explicit *global* sample budget, split evenly across the data
    /// sources (defaults to `SummaryParams::coreset_size`).
    pub sample_size: Option<usize>,
}

/// Configuration of a QT stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantStage {
    /// Explicit quantizer (defaults to the parameters' quantizer, then to
    /// [`DEFAULT_QT_BITS`]).
    pub quantizer: Option<RoundingQuantizer>,
}

/// Configuration of a disPCA stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DisPcaStage {
    /// Explicit summary rank `t1 = t2` (defaults to the clamped
    /// `SummaryParams::pca_dim`).
    pub rank: Option<usize>,
}

/// Configuration of a disSS stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DisSsStage {
    /// Explicit global sample budget (defaults to
    /// `SummaryParams::coreset_size`).
    pub sample_size: Option<usize>,
}

/// One step of a summary pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Stage {
    /// Dimensionality reduction: a seeded, data-oblivious JL projection.
    Dr(JlStage),
    /// Cardinality reduction: an FSS coreset (single data source).
    Cr(FssStage),
    /// Streaming cardinality reduction: every data source feeds its shard
    /// through a merge-and-reduce [`ekm_coreset::StreamingCoreset`] and
    /// finalizes a bounded weighted summary — the edge device summarizes
    /// *while collecting* instead of materializing the full shard.
    Stream(StreamStage),
    /// Quantization: arm the rounding quantizer Γ for subsequent
    /// coreset-point transmissions.
    Qt(QuantStage),
    /// Distributed PCA (\[11\]/\[35\]): one interactive round over all
    /// data sources.
    DisPca(DisPcaStage),
    /// Distributed sensitivity sampling (\[4\]): after this stage the
    /// summary lives at the server.
    DisSs(DisSsStage),
}

impl Stage {
    /// A JL stage with positional-default dimensions.
    pub fn jl() -> Stage {
        Stage::Dr(JlStage::default())
    }

    /// An FSS stage with parameter-default sizes.
    pub fn fss() -> Stage {
        Stage::Cr(FssStage::default())
    }

    /// A streaming merge-and-reduce stage with parameter-default sizes.
    pub fn stream() -> Stage {
        Stage::Stream(StreamStage::default())
    }

    /// A streaming stage with an explicit leaf-buffer size.
    pub fn stream_leaf(leaf_size: usize) -> Stage {
        Stage::Stream(StreamStage {
            leaf_size: Some(leaf_size.max(1)),
            sample_size: None,
        })
    }

    /// A QT stage using the parameters' quantizer (or the default width).
    pub fn qt() -> Stage {
        Stage::Qt(QuantStage::default())
    }

    /// A QT stage with an explicit significand width.
    ///
    /// # Errors
    ///
    /// Propagates invalid widths from [`RoundingQuantizer::new`].
    pub fn qt_bits(s: u32) -> Result<Stage> {
        Ok(Stage::Qt(QuantStage {
            quantizer: Some(RoundingQuantizer::new(s).map_err(CoreError::Quant)?),
        }))
    }

    /// A disPCA stage with parameter-default rank.
    pub fn dispca() -> Stage {
        Stage::DisPca(DisPcaStage::default())
    }

    /// A disSS stage with parameter-default budget.
    pub fn disss() -> Stage {
        Stage::DisSs(DisSsStage::default())
    }

    /// The display token used in pipeline names ("JL+FSS+QT").
    pub fn token(&self) -> &'static str {
        match self {
            Stage::Dr(_) => "JL",
            Stage::Cr(_) => "FSS",
            Stage::Stream(_) => "STREAM",
            Stage::Qt(_) => "QT",
            Stage::DisPca(_) => "disPCA",
            Stage::DisSs(_) => "disSS",
        }
    }

    /// `true` for stages that operate per-source over multiple data
    /// sources — the interactive protocols (disPCA/disSS) and the
    /// streaming stage (every source maintains its own summary), which
    /// the CLI therefore shards like the distributed pipelines.
    pub fn is_distributed(&self) -> bool {
        matches!(self, Stage::DisPca(_) | Stage::DisSs(_) | Stage::Stream(_))
    }

    /// Parses one CLI token (`jl`, `fss`, `stream`, `stream:<leaf>`,
    /// `qt`, `qt:<s>`, `dispca`, `disss`).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidStageName`] for unknown tokens, carrying the
    /// valid vocabulary for the CLI's error message.
    pub fn parse(token: &str) -> Result<Stage> {
        let t = token.trim().to_ascii_lowercase();
        match t.as_str() {
            "jl" => Ok(Stage::jl()),
            "fss" => Ok(Stage::fss()),
            "stream" => Ok(Stage::stream()),
            "qt" => Ok(Stage::qt()),
            "dispca" => Ok(Stage::dispca()),
            "disss" => Ok(Stage::disss()),
            _ => {
                if let Some(bits) = t.strip_prefix("qt:") {
                    let s: u32 = bits.parse().map_err(|_| CoreError::InvalidStageName {
                        token: token.to_string(),
                    })?;
                    return Stage::qt_bits(s);
                }
                if let Some(leaf) = t.strip_prefix("stream:") {
                    let leaf: usize = leaf.parse().ok().filter(|&l| l > 0).ok_or(
                        CoreError::InvalidStageName {
                            token: token.to_string(),
                        },
                    )?;
                    return Ok(Stage::stream_leaf(leaf));
                }
                Err(CoreError::InvalidStageName {
                    token: token.to_string(),
                })
            }
        }
    }

    /// Parses a comma-separated stage list (`"jl,fss,qt,jl"`).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidStageName`] on the first unknown token;
    /// [`CoreError::InvalidConfig`] for an empty list.
    pub fn parse_list(list: &str) -> Result<Vec<Stage>> {
        let stages: Vec<Stage> = list
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(Stage::parse)
            .collect::<Result<_>>()?;
        if stages.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "empty stage list",
            });
        }
        Ok(stages)
    }

    /// The valid `--stages` vocabulary, for error messages and `--help`.
    pub fn vocabulary() -> &'static str {
        "jl, fss, stream, stream:<leaf>, qt, qt:<bits>, dispca, disss"
    }
}

/// The one QT-arming rule shared by the named `+QT` constructors and the
/// CLI's `--quantize` flag: when `params` carry a quantizer and the list
/// has no explicit QT stage, insert one before the first disSS stage
/// (quantization applies to the wire, so it must precede that
/// transmission round) or append it for source-side lists.
pub fn with_default_qt(mut stages: Vec<Stage>, params: &SummaryParams) -> Vec<Stage> {
    if params.quantizer.is_some() && !stages.iter().any(|s| matches!(s, Stage::Qt(_))) {
        let pos = stages
            .iter()
            .position(|s| matches!(s, Stage::DisSs(_)))
            .unwrap_or(stages.len());
        stages.insert(pos, Stage::qt());
    }
    stages
}

/// Joins stage tokens into the paper-legend style display name
/// (`"JL+FSS+QT"`); an empty list is the no-reduction baseline `"NR"`.
pub fn display_name(stages: &[Stage]) -> String {
    if stages.is_empty() {
        return "NR".to_string();
    }
    stages
        .iter()
        .map(Stage::token)
        .collect::<Vec<_>>()
        .join("+")
}

/// Resolves a JL stage's target dimension (the one formula the engine,
/// the server driver, and the source executors must agree on).
pub(crate) fn jl_target_dim(
    cfg: &JlStage,
    params: &SummaryParams,
    cur: usize,
    before_role: bool,
) -> usize {
    match cfg.dim {
        Some(dim) => dim.clamp(1, cur),
        None if before_role => params.effective_jl_before(cur),
        None => params.effective_jl_after(cur),
    }
}

/// Resolves an FSS stage's `(pca_dim, sample_size)`.
pub(crate) fn fss_dims(cfg: &FssStage, params: &SummaryParams, cur: usize) -> (usize, usize) {
    (
        cfg.pca_dim
            .map(|t| t.clamp(1, cur))
            .unwrap_or_else(|| params.effective_pca_dim(cur)),
        cfg.sample_size.unwrap_or(params.coreset_size),
    )
}

/// Resolves a disPCA stage's summary rank `t1 = t2`.
pub(crate) fn dispca_rank(cfg: &DisPcaStage, params: &SummaryParams, cur: usize) -> usize {
    cfg.rank
        .map(|t| t.clamp(1, cur))
        .unwrap_or_else(|| params.effective_pca_dim(cur))
}

/// Resolves a streaming stage's `(leaf_size, per-source budget)` for `m`
/// data sources (the global budget splits evenly, disSS-style).
pub(crate) fn stream_plan(cfg: &StreamStage, params: &SummaryParams, m: usize) -> (usize, usize) {
    let leaf = cfg.leaf_size.unwrap_or(params.stream_leaf_size).max(1);
    let budget = cfg.sample_size.unwrap_or(params.coreset_size);
    (leaf, budget.div_ceil(m).max(params.k).max(1))
}

/// Resolves a disSS stage's global sample budget.
pub(crate) fn disss_budget(cfg: &DisSsStage, params: &SummaryParams) -> usize {
    cfg.sample_size.unwrap_or(params.coreset_size)
}

/// Resolves the effective quantizer of a QT stage against the shared
/// parameters (stage override → params → default width).
pub(crate) fn resolve_quantizer(
    stage: &QuantStage,
    params: &SummaryParams,
) -> Result<RoundingQuantizer> {
    if let Some(q) = &stage.quantizer {
        return Ok(*q);
    }
    if let Some(q) = &params.quantizer {
        return Ok(*q);
    }
    RoundingQuantizer::new(DEFAULT_QT_BITS).map_err(CoreError::Quant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_tokens() {
        assert_eq!(Stage::parse("jl").unwrap(), Stage::jl());
        assert_eq!(Stage::parse(" FSS ").unwrap(), Stage::fss());
        assert_eq!(Stage::parse("qt").unwrap(), Stage::qt());
        assert_eq!(Stage::parse("dispca").unwrap(), Stage::dispca());
        assert_eq!(Stage::parse("disss").unwrap(), Stage::disss());
        match Stage::parse("qt:6").unwrap() {
            Stage::Qt(QuantStage { quantizer: Some(q) }) => {
                assert_eq!(q.significant_bits(), 6);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(Stage::parse("stream").unwrap(), Stage::stream());
        match Stage::parse("STREAM:128").unwrap() {
            Stage::Stream(StreamStage {
                leaf_size: Some(leaf),
                sample_size: None,
            }) => assert_eq!(leaf, 128),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        for bad in [
            "pca", "jlx", "qt:", "qt:abc", "qt:99", "", "stream:", "stream:0", "stream:x",
        ] {
            assert!(Stage::parse(bad).is_err(), "{bad:?} accepted");
        }
        let err = Stage::parse("frobnicate").unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
        assert!(err.to_string().contains("jl"));
    }

    #[test]
    fn parse_list_and_names() {
        let stages = Stage::parse_list("jl,fss,qt,jl").unwrap();
        assert_eq!(stages.len(), 4);
        assert_eq!(display_name(&stages), "JL+FSS+QT+JL");
        assert_eq!(display_name(&[]), "NR");
        assert_eq!(
            display_name(&Stage::parse_list("dispca,disss").unwrap()),
            "disPCA+disSS"
        );
        assert!(Stage::parse_list("").is_err());
        assert!(Stage::parse_list("jl,,fss").is_ok(), "empty tokens skipped");
        assert!(Stage::parse_list("jl,nope").is_err());
    }

    #[test]
    fn default_qt_placement() {
        let plain = SummaryParams::practical(2, 100, 10);
        let quant = plain
            .clone()
            .with_quantizer(ekm_quant::RoundingQuantizer::new(8).unwrap());
        // No quantizer: untouched.
        let s = with_default_qt(Stage::parse_list("jl,fss").unwrap(), &plain);
        assert_eq!(display_name(&s), "JL+FSS");
        // Centralized: appended.
        let s = with_default_qt(Stage::parse_list("jl,fss").unwrap(), &quant);
        assert_eq!(display_name(&s), "JL+FSS+QT");
        // Distributed: inserted before disss.
        let s = with_default_qt(Stage::parse_list("dispca,jl,disss").unwrap(), &quant);
        assert_eq!(display_name(&s), "disPCA+JL+QT+disSS");
        // Explicit qt: not duplicated.
        let s = with_default_qt(Stage::parse_list("qt:4,fss").unwrap(), &quant);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn distributed_flag() {
        assert!(Stage::dispca().is_distributed());
        assert!(Stage::disss().is_distributed());
        assert!(Stage::stream().is_distributed());
        assert!(!Stage::jl().is_distributed());
        assert!(!Stage::fss().is_distributed());
        assert!(!Stage::qt().is_distributed());
    }

    #[test]
    fn stream_compositions_parse_and_display() {
        let stages = Stage::parse_list("jl,stream,qt").unwrap();
        assert_eq!(display_name(&stages), "JL+STREAM+QT");
        // The default-QT rule appends after the streaming summary, where
        // the wire quantization lands.
        let quant = SummaryParams::practical(2, 100, 10)
            .with_quantizer(ekm_quant::RoundingQuantizer::new(8).unwrap());
        let s = with_default_qt(Stage::parse_list("jl,stream").unwrap(), &quant);
        assert_eq!(display_name(&s), "JL+STREAM+QT");
    }
}
