//! The driver's per-source health state machine.
//!
//! PR 7's straggler handling was a one-bit `reissued` flag; replication
//! turns it into an explicit machine the driver consults on every
//! transport loss:
//!
//! ```text
//! healthy ──loss──▶ suspect ──loss──▶ promote next replica ──▶ absorbed
//!    ▲                 │(reissue)        │ (none left / all dead)
//!    └──── response ───┘                 ▼
//!                                     degraded
//! ```
//!
//! A suspect source gets exactly one reissue (the existing recovery);
//! a second loss consumes the next surviving replica from the canonical
//! ring ([`crate::params::replica_holders`]). A promotion that fails
//! (the chosen host is itself dead) consumes the next replica directly
//! — no reissue is owed between failed promotion attempts, the command
//! never reached anyone. Only when the ring is exhausted does the
//! machine settle on [`RecoveryAction::Degrade`], PR 7's last resort.
//!
//! The machine is pure (no transport, no clock) so the proptests in
//! `tests/fault_tolerance.rs` can drive it with arbitrary loss patterns
//! and assert the ordering invariants directly.

use std::collections::VecDeque;

/// What the driver must do about the loss just reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Re-send the in-flight round wrapped in `Command::Reissue`.
    Reissue,
    /// Promote `host`'s cold replica and replay the completed rounds.
    Promote {
        /// The replica holder to promote.
        host: usize,
    },
    /// No replica survives: mark the source lost and degrade.
    Degrade,
}

/// Health state of one source, as the driver sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Answering normally.
    Healthy,
    /// Missed one deadline; a reissue is in flight.
    Suspect,
    /// Dead, but `host`'s persona answers for it — the run recovers
    /// bit-identically.
    Absorbed {
        /// The promoted replica holder.
        host: usize,
    },
    /// Dead with no surviving replica: degraded.
    Dead,
}

/// The per-source machine. See the module docs for the transition
/// diagram.
#[derive(Debug, Clone)]
pub struct HealthMachine {
    /// Replica holders not yet consumed, in canonical ring order.
    replicas: VecDeque<usize>,
    host: Option<usize>,
    suspect: bool,
    dead: bool,
}

impl HealthMachine {
    /// A machine over the source's replica holders in promotion order
    /// (empty = unreplicated, PR 7 behavior).
    pub fn new(replicas: Vec<usize>) -> Self {
        HealthMachine {
            replicas: replicas.into(),
            host: None,
            suspect: false,
            dead: false,
        }
    }

    /// The source's current health.
    pub fn state(&self) -> Health {
        if self.dead {
            Health::Dead
        } else if let Some(host) = self.host {
            Health::Absorbed { host }
        } else if self.suspect {
            Health::Suspect
        } else {
            Health::Healthy
        }
    }

    /// The promoted host, if the source is absorbed.
    pub fn host(&self) -> Option<usize> {
        self.host
    }

    /// A round response arrived: the source (or its persona) answers.
    pub fn on_response(&mut self) {
        self.suspect = false;
    }

    /// A transport loss: the first against a non-suspect earns one
    /// reissue, every further one consumes the next replica (a fresh
    /// host for an absorbed source included) until the ring runs dry.
    pub fn on_loss(&mut self) -> RecoveryAction {
        if self.dead {
            return RecoveryAction::Degrade;
        }
        if !self.suspect {
            self.suspect = true;
            return RecoveryAction::Reissue;
        }
        self.next_replica()
    }

    /// The host chosen by the last [`RecoveryAction::Promote`] could not
    /// be promoted (itself dead): consume the next replica directly —
    /// the command never reached anyone, so no reissue is owed.
    pub fn on_promotion_failed(&mut self) -> RecoveryAction {
        if self.dead {
            return RecoveryAction::Degrade;
        }
        self.next_replica()
    }

    fn next_replica(&mut self) -> RecoveryAction {
        match self.replicas.pop_front() {
            Some(host) => {
                self.host = Some(host);
                self.suspect = false;
                RecoveryAction::Promote { host }
            }
            None => {
                self.host = None;
                self.dead = true;
                RecoveryAction::Degrade
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreplicated_machine_reissues_once_then_degrades() {
        let mut h = HealthMachine::new(vec![]);
        assert_eq!(h.state(), Health::Healthy);
        assert_eq!(h.on_loss(), RecoveryAction::Reissue);
        assert_eq!(h.state(), Health::Suspect);
        assert_eq!(h.on_loss(), RecoveryAction::Degrade);
        assert_eq!(h.state(), Health::Dead);
        assert_eq!(h.on_loss(), RecoveryAction::Degrade);
    }

    #[test]
    fn a_response_clears_suspicion_and_re_earns_the_reissue() {
        let mut h = HealthMachine::new(vec![]);
        assert_eq!(h.on_loss(), RecoveryAction::Reissue);
        h.on_response();
        assert_eq!(h.state(), Health::Healthy);
        assert_eq!(h.on_loss(), RecoveryAction::Reissue);
    }

    #[test]
    fn replicas_are_consumed_in_ring_order_then_degrade() {
        let mut h = HealthMachine::new(vec![3, 4]);
        assert_eq!(h.on_loss(), RecoveryAction::Reissue);
        assert_eq!(h.on_loss(), RecoveryAction::Promote { host: 3 });
        assert_eq!(h.state(), Health::Absorbed { host: 3 });
        // The promoted host dies too: reissue once, then the next ring
        // entry.
        assert_eq!(h.on_loss(), RecoveryAction::Reissue);
        assert_eq!(h.on_loss(), RecoveryAction::Promote { host: 4 });
        assert_eq!(h.on_loss(), RecoveryAction::Reissue);
        assert_eq!(h.on_loss(), RecoveryAction::Degrade);
        assert_eq!(h.state(), Health::Dead);
    }

    #[test]
    fn failed_promotions_walk_the_ring_without_extra_reissues() {
        let mut h = HealthMachine::new(vec![1, 2, 3]);
        assert_eq!(h.on_loss(), RecoveryAction::Reissue);
        assert_eq!(h.on_loss(), RecoveryAction::Promote { host: 1 });
        assert_eq!(h.on_promotion_failed(), RecoveryAction::Promote { host: 2 });
        assert_eq!(h.on_promotion_failed(), RecoveryAction::Promote { host: 3 });
        assert_eq!(h.on_promotion_failed(), RecoveryAction::Degrade);
        assert_eq!(h.state(), Health::Dead);
    }
}
