//! Server-side computation: solving weighted k-means on a received
//! summary and mapping the centers back to the original space.

use crate::{CoreError, Result};
use ekm_clustering::kmeans::KMeans;
use ekm_linalg::distance::Compute;
use ekm_linalg::random::derive_seed;
use ekm_linalg::{ops, Matrix};
use ekm_sketch::JlProjection;

/// Runs the server's `kmeans(S', w, k)` step: multi-restart weighted
/// k-means++ / Lloyd on the summary points, with the centroid updates
/// sharded over `shards` worker threads (`0` follows the hardware; the
/// centers are bit-identical at every setting, so the knob only trades
/// wall-clock time — the summary can reach ~10⁵ points at full scale).
/// `compute` selects the distance-kernel precision: `F64` is the
/// bit-reproducibility reference, `F32` is faster under the accuracy
/// contract.
///
/// # Errors
///
/// Propagates clustering failures (empty summary, `k` larger than the
/// number of positive-weight points, …).
pub fn solve_weighted_kmeans(
    points: &Matrix,
    weights: &[f64],
    k: usize,
    restarts: usize,
    seed: u64,
    shards: usize,
    compute: Compute,
) -> Result<Matrix> {
    let model = KMeans::new(k)
        .with_n_init(restarts.max(1))
        .with_seed(derive_seed(seed, 0x5EB))
        .with_shards(shards)
        .with_compute(compute)
        .fit_weighted(points, weights)?;
    Ok(model.centers)
}

/// Maps centers back through a chain of projections applied source-side:
/// `X = X' · Π_last⁺ · … · Π_first⁺` (the paper's `π⁻¹` composition,
/// Algorithm 3 line 8). Pass the projections in the order they were
/// *applied*; the inverses are applied in reverse.
///
/// # Errors
///
/// Propagates pseudo-inverse and shape failures.
pub fn lift_centers(centers: &Matrix, projections: &[&JlProjection]) -> Result<Matrix> {
    let mut x = centers.clone();
    for pi in projections.iter().rev() {
        x = pi.lift(&x).map_err(CoreError::Linalg)?;
    }
    Ok(x)
}

/// Maps coordinate-space centers through an orthonormal basis back to the
/// ambient space (`X = X_c · Vᵀ`), the lift used after clustering FSS /
/// disPCA coordinates.
///
/// # Errors
///
/// Propagates shape failures.
pub fn lift_centers_through_basis(centers: &Matrix, basis: &Matrix) -> Result<Matrix> {
    ops::matmul_transb(centers, basis).map_err(CoreError::Linalg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_sketch::JlKind;

    #[test]
    fn solve_weighted_kmeans_finds_blobs() {
        let points = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.0],
            vec![8.0, 8.0],
            vec![8.2, 8.0],
        ]);
        let centers =
            solve_weighted_kmeans(&points, &[1.0, 1.0, 1.0, 1.0], 2, 3, 1, 1, Compute::F64)
                .unwrap();
        assert_eq!(centers.shape(), (2, 2));
        let mut xs: Vec<f64> = (0..2).map(|i| centers[(i, 0)]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] - 0.1).abs() < 1e-9);
        assert!((xs[1] - 8.1).abs() < 1e-9);
    }

    #[test]
    fn weights_pull_centers() {
        let points = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let centers =
            solve_weighted_kmeans(&points, &[3.0, 1.0], 1, 1, 0, 0, Compute::F64).unwrap();
        assert!((centers[(0, 0)] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn lift_single_projection_roundtrip() {
        let pi = JlProjection::generate(JlKind::Gaussian, 30, 8, 3);
        let x_prime = Matrix::from_fn(2, 8, |i, j| (i + j) as f64 * 0.2);
        let lifted = lift_centers(&x_prime, &[&pi]).unwrap();
        assert_eq!(lifted.shape(), (2, 30));
        // Projecting the lifted centers returns the originals.
        let back = pi.project(&lifted).unwrap();
        assert!(back.approx_eq(&x_prime, 1e-8));
    }

    #[test]
    fn lift_composed_projections_in_reverse_order() {
        let pi1 = JlProjection::generate(JlKind::Gaussian, 40, 16, 5);
        let pi2 = JlProjection::generate(JlKind::Gaussian, 16, 6, 6);
        let x2 = Matrix::from_fn(3, 6, |i, j| (i * 6 + j) as f64 * 0.1);
        let lifted = lift_centers(&x2, &[&pi1, &pi2]).unwrap();
        assert_eq!(lifted.shape(), (3, 40));
        // π2(π1(lifted)) == x2.
        let fwd = pi2.project(&pi1.project(&lifted).unwrap()).unwrap();
        assert!(fwd.approx_eq(&x2, 1e-7));
    }

    #[test]
    fn lift_through_basis() {
        let basis = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]]); // 3×2: embeds R² into first two coords of R³
        let coords = Matrix::from_rows(&[vec![2.0, 3.0]]);
        let lifted = lift_centers_through_basis(&coords, &basis).unwrap();
        assert_eq!(lifted.shape(), (1, 3));
        assert_eq!(lifted.row(0), &[2.0, 3.0, 0.0]);
    }

    #[test]
    fn errors_propagate() {
        assert!(
            solve_weighted_kmeans(&Matrix::zeros(0, 2), &[], 1, 1, 0, 1, Compute::F64).is_err()
        );
        let pi = JlProjection::generate(JlKind::Gaussian, 10, 4, 1);
        // Wrong center dimension for lift.
        assert!(lift_centers(&Matrix::zeros(2, 5), &[&pi]).is_err());
    }
}
