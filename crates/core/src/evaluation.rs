//! Evaluation metrics (paper §7.1).
//!
//! * **Normalized k-means cost** — `cost(P, X)/cost(P, X*)` where `X` is
//!   what the evaluated pipeline returned and `X*` is the centers computed
//!   from the full dataset (the paper computes `X*` directly on `P`; we
//!   use the same multi-restart solver proxy).
//! * **Normalized communication cost** — transmitted bits over the bit
//!   size of the raw dataset (see [`crate::RunOutput::normalized_comm`]).
//! * **Complexity** — wall-clock running time at the data source(s).

use crate::server::solve_weighted_kmeans;
use crate::Result;
use ekm_linalg::distance::Compute;
use ekm_linalg::Matrix;

/// A reference solution computed from the full dataset (the `X*` proxy).
#[derive(Debug, Clone)]
pub struct Reference {
    /// Centers computed from the full dataset.
    pub centers: Matrix,
    /// Their k-means cost on the full dataset.
    pub cost: f64,
}

/// Computes the reference centers/cost with a generous multi-restart
/// solver.
///
/// # Errors
///
/// Propagates clustering failures.
pub fn reference(data: &Matrix, k: usize, restarts: usize, seed: u64) -> Result<Reference> {
    let weights = vec![1.0; data.rows()];
    // The X* proxy is always solved in f64: it is the yardstick the
    // f32 compute path's cost-ratio contract is measured against.
    let centers = solve_weighted_kmeans(data, &weights, k, restarts.max(1), seed, 0, Compute::F64)?;
    let cost = ekm_clustering::cost::cost(data, &centers)?;
    Ok(Reference { centers, cost })
}

/// Normalized k-means cost of `centers` against a reference cost.
///
/// Values close to 1 mean the summary-based solution matches the
/// full-data solution; the paper's Figures 1–6 plot exactly this.
///
/// # Errors
///
/// Propagates assignment failures.
pub fn normalized_cost(data: &Matrix, centers: &Matrix, reference_cost: f64) -> Result<f64> {
    let c = ekm_clustering::cost::cost(data, centers)?;
    if reference_cost > 0.0 {
        Ok(c / reference_cost)
    } else {
        // Degenerate reference (cost 0): report 1 when we also hit 0.
        Ok(if c == 0.0 { 1.0 } else { f64::INFINITY })
    }
}

/// Builds the empirical CDF of a sample: returns `(sorted value, CDF)`
/// pairs — the format of the paper's Figure 1/2 curves.
pub fn empirical_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite metric values"));
    let n = sorted.len().max(1) as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..40 {
            let j = (i % 8) as f64 * 0.05;
            rows.push(vec![j, 0.0]);
            rows.push(vec![9.0 + j, 0.0]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn reference_is_good() {
        let data = blobs();
        let r = reference(&data, 2, 5, 1).unwrap();
        assert!(r.cost < 2.0, "reference cost {}", r.cost);
        assert_eq!(r.centers.rows(), 2);
    }

    #[test]
    fn normalized_cost_of_reference_is_one() {
        let data = blobs();
        let r = reference(&data, 2, 5, 2).unwrap();
        let nc = normalized_cost(&data, &r.centers, r.cost).unwrap();
        assert!((nc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worse_centers_score_above_one() {
        let data = blobs();
        let r = reference(&data, 2, 5, 3).unwrap();
        let bad = Matrix::from_rows(&[vec![100.0, 0.0], vec![200.0, 0.0]]);
        let nc = normalized_cost(&data, &bad, r.cost).unwrap();
        assert!(nc > 10.0);
    }

    #[test]
    fn degenerate_reference_handled() {
        let data = Matrix::from_fn(5, 2, |_, _| 1.0);
        let exact = Matrix::from_rows(&[vec![1.0, 1.0]]);
        assert_eq!(normalized_cost(&data, &exact, 0.0).unwrap(), 1.0);
        let off = Matrix::from_rows(&[vec![2.0, 2.0]]);
        assert!(normalized_cost(&data, &off, 0.0).unwrap().is_infinite());
    }

    #[test]
    fn cdf_properties() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf[0], (1.0, 0.25));
        assert_eq!(cdf[3], (3.0, 1.0));
        // Monotone in both coordinates.
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert!(empirical_cdf(&[]).is_empty());
    }
}
