//! Single-data-source pipelines (paper §4 and the §6 quantized variants),
//! as canned stage lists over the generic [`StagePipeline`] engine.
//!
//! Every pipeline plays both roles of the protocol: the *data source* part
//! builds a summary and sends it over the [`Network`] (whose counters
//! measure the encoded bits), and the *server* part solves weighted
//! k-means on what arrives and maps the centers back to the original
//! space. JL projection matrices are regenerated from the shared seed on
//! the server side — they are never transmitted.
//!
//! The named types here are thin constructors kept for the paper-legend
//! names and for API stability; they all delegate to
//! [`crate::engine::StagePipeline`], so `JlFssJl::new(p)` and
//! `StagePipeline::from_names("jl,fss,jl", p)` are the same pipeline —
//! bit-identical uplink and identical centers (asserted by the
//! `stage_equivalence` integration tests).

use crate::engine::StagePipeline;
use crate::params::SummaryParams;
use crate::stage::Stage;
use crate::{CoreError, Result, RunOutput};
use ekm_linalg::Matrix;
use ekm_net::messages::Message;
use ekm_net::wire::Precision;
use ekm_net::Network;
use ekm_quant::RoundingQuantizer;

/// Seed streams derived from the shared seed (source and server derive
/// identical values).
pub(crate) mod seeds {
    /// First (pre-CR) JL projection.
    pub const JL_BEFORE: u64 = 1;
    /// Second (post-CR) JL projection.
    pub const JL_AFTER: u64 = 2;
    /// FSS / sensitivity sampling randomness.
    pub const FSS: u64 = 3;
    /// Server-side k-means solver.
    pub const SERVER: u64 = 4;
    /// Streaming merge-and-reduce randomness (each source derives its
    /// own stream from this one by source index).
    pub const STREAM: u64 = 5;
    /// Base stream for JL stages beyond the paper's two (arbitrary
    /// compositions may stack more projections; each needs fresh
    /// randomness).
    pub const JL_EXTRA_BASE: u64 = 32;
}

/// A pipeline in the single-data-source (centralized) setting.
pub trait CentralizedPipeline {
    /// Human-readable name matching the paper's legends ("JL+FSS", …).
    fn name(&self) -> String;

    /// Runs the full source → server protocol on `data`, charging all
    /// traffic to source 0 of `net`.
    ///
    /// # Errors
    ///
    /// Propagates configuration, numeric, and protocol failures.
    fn run(&self, data: &Matrix, net: &mut Network) -> Result<RunOutput>;
}

impl CentralizedPipeline for StagePipeline {
    fn name(&self) -> String {
        StagePipeline::name(self)
    }

    fn run(&self, data: &Matrix, net: &mut Network) -> Result<RunOutput> {
        StagePipeline::run(self, data, net)
    }
}

/// Quantizes points for the wire if a quantizer is configured; returns the
/// payload and its [`Precision`].
pub(crate) fn quantize_for_wire(
    points: &Matrix,
    quantizer: Option<&RoundingQuantizer>,
) -> (Matrix, Precision) {
    match quantizer {
        Some(q) => (
            q.quantize_matrix(points),
            Precision::Quantized {
                s: q.significant_bits(),
            },
        ),
        None => (points.clone(), Precision::Full),
    }
}

/// Destructures a decoded coreset message.
pub(crate) fn expect_coreset(msg: Message) -> Result<(Matrix, Vec<f64>, f64)> {
    match msg {
        Message::Coreset {
            points,
            weights,
            delta,
            ..
        } => Ok((points, weights, delta)),
        _ => Err(CoreError::Protocol {
            reason: "expected a coreset message",
        }),
    }
}

/// Destructures a decoded basis message.
pub(crate) fn expect_basis(msg: Message) -> Result<Matrix> {
    match msg {
        Message::Basis { basis, .. } => Ok(basis),
        _ => Err(CoreError::Protocol {
            reason: "expected a basis message",
        }),
    }
}

macro_rules! declare_centralized_pipeline {
    ($(#[$meta:meta])* $name:ident, [$($stage:expr),*]) => {
        $(#[$meta])*
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: StagePipeline,
        }

        impl $name {
            /// Creates the pipeline with the given parameters (a
            /// quantizer in `params` adds the `+QT` wire stage).
            pub fn new(params: SummaryParams) -> Self {
                let stages = crate::stage::with_default_qt(vec![$($stage),*], &params);
                $name {
                    inner: StagePipeline::new(stages, params),
                }
            }

            /// The canned stage list as a reusable engine pipeline.
            pub fn into_stage_pipeline(self) -> StagePipeline {
                self.inner
            }
        }

        impl CentralizedPipeline for $name {
            fn name(&self) -> String {
                self.inner.name()
            }

            fn run(&self, data: &Matrix, net: &mut Network) -> Result<RunOutput> {
                self.inner.run(data, net)
            }
        }
    };
}

/// The "no reduction" baseline: ship the raw dataset, solve at the
/// server. (Ignores any configured quantizer, like the paper's NR —
/// only `k`, `kmeans_restarts`, and `seed` matter.)
#[derive(Debug, Clone)]
pub struct NoReduction {
    inner: StagePipeline,
}

impl NoReduction {
    /// Creates the baseline with the given parameters.
    pub fn new(params: SummaryParams) -> Self {
        NoReduction {
            inner: StagePipeline::new(Vec::new(), params),
        }
    }

    /// The (empty) stage list as a reusable engine pipeline.
    pub fn into_stage_pipeline(self) -> StagePipeline {
        self.inner
    }
}

impl CentralizedPipeline for NoReduction {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn run(&self, data: &Matrix, net: &mut Network) -> Result<RunOutput> {
        self.inner.run(data, net)
    }
}

declare_centralized_pipeline!(
    /// The FSS baseline \[11\]: PCA-subspace coreset, transmitted as
    /// coordinates **plus the subspace basis** (the `O(kd/ε²)`
    /// communication cost of Theorem 4.1).
    Fss,
    [Stage::fss()]
);

declare_centralized_pipeline!(
    /// **Algorithm 1** (JL+FSS): JL projection first, then FSS in the
    /// projected space. Communication `O(k·log n/ε⁴)`, source complexity
    /// `Õ(nd/ε²)` (Theorem 4.2).
    JlFss,
    [Stage::jl(), Stage::fss()]
);

declare_centralized_pipeline!(
    /// **Algorithm 2** (FSS+JL): FSS in the original space, then JL
    /// projection of the coreset points. Communication `Õ(k³/ε⁶)` (no
    /// basis, no `log n`), source complexity `O(nd·min(n,d))`
    /// (Theorem 4.3).
    FssJl,
    [Stage::fss(), Stage::jl()]
);

declare_centralized_pipeline!(
    /// **Algorithm 3** (JL+FSS+JL): JL before *and* after FSS — the
    /// communication of Algorithm 2 at the complexity of Algorithm 1
    /// (Theorem 4.4).
    JlFssJl,
    [Stage::jl(), Stage::fss(), Stage::jl()]
);

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_clustering::cost::cost;
    use ekm_data::synth::GaussianMixture;

    /// A paper-regime workload: moderately separated mixture, normalized
    /// to zero mean / [-1, 1] exactly as §7.1 prescribes. (The JL-based
    /// pipelines lift centers through Π⁺, which — like in the paper —
    /// assumes centroid norms are modest relative to in-cluster scatter;
    /// normalization is what makes that hold on the real datasets too.)
    fn workload(n: usize, d: usize, seed: u64) -> Matrix {
        let raw = GaussianMixture::new(n, d, 2)
            .with_separation(4.0)
            .with_cluster_std(1.0)
            .with_seed(seed)
            .generate()
            .unwrap()
            .points;
        ekm_data::normalize::normalize_paper(&raw).0
    }

    fn params(n: usize, d: usize) -> SummaryParams {
        SummaryParams::practical(2, n, d).with_seed(11)
    }

    fn all_pipelines(p: &SummaryParams) -> Vec<Box<dyn CentralizedPipeline>> {
        vec![
            Box::new(Fss::new(p.clone())),
            Box::new(JlFss::new(p.clone())),
            Box::new(FssJl::new(p.clone())),
            Box::new(JlFssJl::new(p.clone())),
        ]
    }

    #[test]
    fn all_pipelines_produce_good_centers() {
        let data = workload(600, 40, 1);
        let p = params(600, 40);
        let mut net = Network::new(1);
        let reference = NoReduction::new(p.clone()).run(&data, &mut net).unwrap();
        let ref_cost = cost(&data, &reference.centers).unwrap();
        for pipe in all_pipelines(&p) {
            let out = pipe.run(&data, &mut net).unwrap();
            assert_eq!(out.centers.shape(), (2, 40), "{}", pipe.name());
            let c = cost(&data, &out.centers).unwrap();
            let ratio = c / ref_cost;
            assert!(ratio < 1.35, "{}: normalized cost {ratio}", pipe.name());
        }
    }

    #[test]
    fn communication_ordering_matches_table2() {
        // For d ≫ log n the paper's Table 2 predicts:
        // NR ≫ FSS > JL-based methods.
        let data = workload(500, 200, 2);
        let p = params(500, 200);
        let mut net = Network::new(1);
        let nr = NoReduction::new(p.clone()).run(&data, &mut net).unwrap();
        let fss = Fss::new(p.clone()).run(&data, &mut net).unwrap();
        let jlfss = JlFss::new(p.clone()).run(&data, &mut net).unwrap();
        let fssjl = FssJl::new(p.clone()).run(&data, &mut net).unwrap();
        let jlfssjl = JlFssJl::new(p.clone()).run(&data, &mut net).unwrap();
        assert!(
            fss.uplink_bits < nr.uplink_bits / 2,
            "FSS {} vs NR {}",
            fss.uplink_bits,
            nr.uplink_bits
        );
        assert!(
            jlfss.uplink_bits < fss.uplink_bits,
            "JL+FSS {} vs FSS {}",
            jlfss.uplink_bits,
            fss.uplink_bits
        );
        assert!(fssjl.uplink_bits < fss.uplink_bits);
        assert!(jlfssjl.uplink_bits < fss.uplink_bits);
    }

    #[test]
    fn quantization_reduces_bits_without_hurting_cost_much() {
        let data = workload(500, 60, 3);
        let p = params(500, 60);
        let q = RoundingQuantizer::new(10).unwrap();
        let pq = p.clone().with_quantizer(q);
        let mut net = Network::new(1);
        let plain = JlFssJl::new(p.clone()).run(&data, &mut net).unwrap();
        let quant = JlFssJl::new(pq).run(&data, &mut net).unwrap();
        assert!(
            quant.uplink_bits < plain.uplink_bits,
            "quantized {} vs plain {}",
            quant.uplink_bits,
            plain.uplink_bits
        );
        let c_plain = cost(&data, &plain.centers).unwrap();
        let c_quant = cost(&data, &quant.centers).unwrap();
        assert!(
            c_quant < 1.3 * c_plain,
            "QT cost {c_quant} vs plain {c_plain}"
        );
    }

    #[test]
    fn pipeline_names() {
        let p = params(100, 10);
        assert_eq!(NoReduction::new(p.clone()).name(), "NR");
        assert_eq!(Fss::new(p.clone()).name(), "FSS");
        assert_eq!(JlFss::new(p.clone()).name(), "JL+FSS");
        assert_eq!(FssJl::new(p.clone()).name(), "FSS+JL");
        assert_eq!(JlFssJl::new(p.clone()).name(), "JL+FSS+JL");
        let q = RoundingQuantizer::new(4).unwrap();
        assert_eq!(Fss::new(p.clone().with_quantizer(q)).name(), "FSS+QT");
        assert_eq!(JlFssJl::new(p.with_quantizer(q)).name(), "JL+FSS+JL+QT");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = workload(300, 20, 4);
        let p = params(300, 20);
        let mut net = Network::new(1);
        let a = JlFssJl::new(p.clone()).run(&data, &mut net).unwrap();
        let b = JlFssJl::new(p).run(&data, &mut net).unwrap();
        assert!(a.centers.approx_eq(&b.centers, 0.0));
        assert_eq!(a.uplink_bits, b.uplink_bits);
    }

    #[test]
    fn uplink_accounting_is_delta_based() {
        let data = workload(200, 15, 5);
        let p = params(200, 15);
        let mut net = Network::new(1);
        let first = JlFss::new(p.clone()).run(&data, &mut net).unwrap();
        let second = JlFss::new(p).run(&data, &mut net).unwrap();
        // Same pipeline twice: identical per-run bits even though the
        // network accumulates.
        assert_eq!(first.uplink_bits, second.uplink_bits);
        assert_eq!(
            net.stats().total_uplink_bits(),
            first.uplink_bits + second.uplink_bits
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let data = workload(50, 5, 6);
        let mut p = params(50, 5);
        p.coreset_size = 0;
        let mut net = Network::new(1);
        assert!(matches!(
            JlFss::new(p).run(&data, &mut net),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn summary_points_far_fewer_than_n() {
        let data = workload(2000, 30, 7);
        let p = params(2000, 30);
        let mut net = Network::new(1);
        let out = JlFssJl::new(p).run(&data, &mut net).unwrap();
        assert!(out.summary_points < 2000 / 2, "{}", out.summary_points);
        assert!(out.summary_points > 0);
    }

    #[test]
    fn named_constructors_expose_their_stage_lists() {
        let p = params(100, 10);
        let sp = JlFssJl::new(p.clone()).into_stage_pipeline();
        assert_eq!(sp.stages().len(), 3);
        assert_eq!(sp.name(), "JL+FSS+JL");
        let q = RoundingQuantizer::new(8).unwrap();
        let sp = FssJl::new(p.with_quantizer(q)).into_stage_pipeline();
        assert_eq!(sp.stages().len(), 3, "QT stage appended");
        assert_eq!(sp.name(), "FSS+JL+QT");
    }
}
