//! Stage-output memoization for pipeline sweeps.
//!
//! `ekm sweep` runs many stage compositions over the *same* dataset, and
//! compositions routinely share a prefix — e.g. `jl,fss` under every QT
//! width. The engine's source-side stages (`jl`, `fss`, `stream`) are
//! pure, seed-deterministic functions of (stage config, shared
//! parameters, upstream summary state), so their outputs can be memoized
//! across pipelines: a [`StageCache`] maps a 64-bit key — stage config ⊕
//! parameter knobs ⊕ a fingerprint of every upstream bit the stage can
//! observe — to the snapshot of the state the stage produced.
//!
//! Cache hits are **bit-identical to a cold run by construction**: the
//! key covers all inputs of the stage's computation, the snapshot stores
//! the complete post-stage state delta (including the deterministic
//! operation count), and the interactive stages (`dispca`, `disss`) and
//! the transmission phase are never cached — their traffic must flow
//! through the live [`ekm_net::Transport`], which keeps the bit ledger
//! of a cached sweep identical to an uncached one.

use crate::projection::MaybeProjection;
use ekm_linalg::Matrix;
use ekm_sketch::JlKind;
use std::collections::HashMap;
use std::path::PathBuf;

/// Incremental FNV-1a 64-bit hasher — deterministic across runs and
/// platforms, used for both stage keys and data fingerprints.
#[derive(Debug, Clone)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    pub fn write_f64s(&mut self, vs: &[f64]) {
        self.write_usize(vs.len());
        for v in vs {
            self.write_u64(v.to_bits());
        }
    }

    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    pub fn write_matrix(&mut self, m: &Matrix) {
        self.write_usize(m.rows());
        self.write_usize(m.cols());
        self.write_f64s(m.as_slice());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The complete state delta a cached stage replays on a hit: the fields
/// the source-side stages overwrite wholesale, the projection a DR stage
/// appends, the positional JL bookkeeping, and the deterministic
/// operation count the stage would have charged.
#[derive(Debug, Clone)]
pub(crate) struct StageSnapshot {
    pub parts: Vec<Matrix>,
    pub weights: Option<Vec<Vec<f64>>>,
    pub deltas: Vec<f64>,
    pub basis: Option<Matrix>,
    pub source_basis: Option<Matrix>,
    pub basis_shared: bool,
    pub appended_projections: Vec<MaybeProjection>,
    pub jl: crate::engine::JlBook,
    pub ops_delta: u64,
    /// Per-source compute seconds the cold run charged for this stage,
    /// replayed on a hit so cached sweeps report comparable source
    /// timings (the deterministic `ops_delta` is the exact counterpart).
    pub seconds_delta: f64,
}

impl StageSnapshot {
    /// Approximate heap footprint of the snapshot, for the LRU budget.
    /// Matrices and weight vectors dominate; per-entry bookkeeping is
    /// charged a small flat overhead.
    fn approx_bytes(&self) -> usize {
        let matrix_bytes = |m: &Matrix| m.rows() * m.cols() * 8 + 64;
        let mut bytes = 128;
        bytes += self.parts.iter().map(&matrix_bytes).sum::<usize>();
        if let Some(all) = &self.weights {
            bytes += all.iter().map(|w| w.len() * 8 + 24).sum::<usize>();
        }
        bytes += self.deltas.len() * 8;
        for b in [&self.basis, &self.source_basis].into_iter().flatten() {
            bytes += matrix_bytes(b);
        }
        for pi in &self.appended_projections {
            if let MaybeProjection::Jl(p) = pi {
                bytes += p.source_dim() * p.target_dim() * 8 + 64;
            }
        }
        bytes
    }

    /// Serializes the snapshot for the disk tier. Floats travel as raw
    /// bit patterns (`f64::to_bits`), and a JL projection travels as its
    /// regeneration parameters — kind, dims, seed — because
    /// [`MaybeProjection::generate`] rebuilds the same matrix bit for
    /// bit, which keeps spilled entries byte-exact and small.
    fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.approx_bytes() + 64);
        v.extend_from_slice(&SPILL_MAGIC.to_le_bytes());
        v.push(SPILL_VERSION);
        put_u32(&mut v, self.parts.len() as u32);
        for m in &self.parts {
            put_matrix(&mut v, m);
        }
        match &self.weights {
            None => v.push(0),
            Some(all) => {
                v.push(1);
                put_u32(&mut v, all.len() as u32);
                for w in all {
                    put_f64s(&mut v, w);
                }
            }
        }
        put_f64s(&mut v, &self.deltas);
        for basis in [&self.basis, &self.source_basis] {
            match basis {
                None => v.push(0),
                Some(m) => {
                    v.push(1);
                    put_matrix(&mut v, m);
                }
            }
        }
        v.push(u8::from(self.basis_shared));
        put_u32(&mut v, self.appended_projections.len() as u32);
        for pi in &self.appended_projections {
            match pi {
                MaybeProjection::Identity { dim } => {
                    v.push(0);
                    put_u32(&mut v, *dim as u32);
                }
                MaybeProjection::Jl(p) => {
                    v.push(1);
                    v.push(match p.kind() {
                        JlKind::Gaussian => 0,
                        JlKind::Achlioptas => 1,
                    });
                    put_u32(&mut v, p.source_dim() as u32);
                    put_u32(&mut v, p.target_dim() as u32);
                    v.extend_from_slice(&p.seed().to_le_bytes());
                }
            }
        }
        put_u32(&mut v, self.jl.jl_count as u32);
        v.push(u8::from(self.jl.jl_after_used));
        v.push(u8::from(self.jl.any_reduction));
        v.extend_from_slice(&self.ops_delta.to_le_bytes());
        v.extend_from_slice(&self.seconds_delta.to_bits().to_le_bytes());
        v
    }

    /// Inverse of [`StageSnapshot::to_bytes`]. `None` on any torn or
    /// foreign content — the caller treats that as a cache miss.
    fn from_bytes(buf: &[u8]) -> Option<StageSnapshot> {
        let mut r = Rd { b: buf };
        if r.u32()? != SPILL_MAGIC || r.u8()? != SPILL_VERSION {
            return None;
        }
        let parts = (0..r.u32()?)
            .map(|_| r.matrix())
            .collect::<Option<Vec<_>>>()?;
        let weights = match r.u8()? {
            0 => None,
            _ => Some(
                (0..r.u32()?)
                    .map(|_| r.f64s())
                    .collect::<Option<Vec<_>>>()?,
            ),
        };
        let deltas = r.f64s()?;
        let mut bases = [None, None];
        for b in &mut bases {
            if r.u8()? != 0 {
                *b = Some(r.matrix()?);
            }
        }
        let [basis, source_basis] = bases;
        let basis_shared = r.u8()? != 0;
        let appended_projections = (0..r.u32()?)
            .map(|_| match r.u8()? {
                0 => Some(MaybeProjection::Identity {
                    dim: r.u32()? as usize,
                }),
                1 => {
                    let kind = match r.u8()? {
                        0 => JlKind::Gaussian,
                        1 => JlKind::Achlioptas,
                        _ => return None,
                    };
                    let (source, target) = (r.u32()? as usize, r.u32()? as usize);
                    let seed = r.u64()?;
                    Some(MaybeProjection::generate(kind, source, target, seed))
                }
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        let jl = crate::engine::JlBook {
            jl_count: r.u32()? as usize,
            jl_after_used: r.u8()? != 0,
            any_reduction: r.u8()? != 0,
        };
        let ops_delta = r.u64()?;
        let seconds_delta = f64::from_bits(r.u64()?);
        if !r.b.is_empty() {
            return None; // trailing garbage: not our file
        }
        Some(StageSnapshot {
            parts,
            weights,
            deltas,
            basis,
            source_basis,
            basis_shared,
            appended_projections,
            jl,
            ops_delta,
            seconds_delta,
        })
    }
}

/// `"EKSC"` — marks spill files; anything else is treated as a miss.
const SPILL_MAGIC: u32 = 0x454b_5343;
const SPILL_VERSION: u8 = 1;

fn put_u32(v: &mut Vec<u8>, x: u32) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn put_f64s(v: &mut Vec<u8>, xs: &[f64]) {
    put_u32(v, xs.len() as u32);
    for x in xs {
        v.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn put_matrix(v: &mut Vec<u8>, m: &Matrix) {
    put_u32(v, m.rows() as u32);
    put_u32(v, m.cols() as u32);
    for x in m.as_slice() {
        v.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over a spill file's bytes.
struct Rd<'a> {
    b: &'a [u8],
}

impl Rd<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.b.len() < n {
            return None;
        }
        let (head, tail) = self.b.split_at(n);
        self.b = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64s(&mut self) -> Option<Vec<f64>> {
        let n = self.u32()? as usize;
        let raw = self.take(n * 8)?;
        Some(
            raw.chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
                .collect(),
        )
    }

    fn matrix(&mut self) -> Option<Matrix> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let raw = self.take(rows.checked_mul(cols)?.checked_mul(8)?)?;
        let data = raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
            .collect();
        Some(Matrix::from_vec(rows, cols, data))
    }
}

/// Memoized per-stage outputs, shared across the pipelines of a sweep.
///
/// Create one cache, pass it to every
/// [`StagePipeline::run_cached`](crate::engine::StagePipeline::run_cached) /
/// [`run_shards_cached`](crate::engine::StagePipeline::run_shards_cached)
/// call of the sweep, and shared prefixes are computed once; outputs and
/// bit accounting are bit-identical to uncached runs.
///
/// # Example
///
/// ```
/// use ekm_core::cache::StageCache;
/// use ekm_core::engine::StagePipeline;
/// use ekm_core::params::SummaryParams;
/// use ekm_net::Network;
/// use ekm_linalg::Matrix;
///
/// let data = Matrix::from_fn(300, 16, |i, j| ((i * 31 + j * 17) % 13) as f64 * 0.2);
/// let params = SummaryParams::practical(2, 300, 16).with_seed(7);
/// let mut cache = StageCache::new();
/// for stages in ["jl,fss,qt:6", "jl,fss,qt:10"] {
///     let pipe = StagePipeline::from_names(stages, params.clone()).unwrap();
///     let mut net = Network::new(1);
///     pipe.run_cached(&data, &mut net, &mut cache).unwrap();
/// }
/// // The second pipeline replayed the shared jl,fss prefix.
/// assert_eq!(cache.hits(), 2);
/// assert_eq!(cache.misses(), 2);
/// ```
#[derive(Debug, Default)]
pub struct StageCache {
    entries: HashMap<u64, CacheEntry>,
    /// Optional byte budget; `None` caches without bound.
    budget: Option<usize>,
    /// Approximate bytes currently held.
    held_bytes: usize,
    /// Monotonic recency clock (bumped on every lookup hit and store).
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Optional spill-on-evict disk tier under the LRU.
    disk: Option<DiskTier>,
    disk_hits: u64,
    spills: u64,
}

/// The disk tier's ledger: one `{key:016x}` file per spilled snapshot,
/// bounded by its own byte budget with oldest-spill eviction.
#[derive(Debug)]
struct DiskTier {
    dir: PathBuf,
    budget: usize,
    held: usize,
    /// key → (file bytes, spill recency).
    files: HashMap<u64, (usize, u64)>,
}

impl DiskTier {
    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}"))
    }

    fn remove(&mut self, key: u64) {
        if let Some((bytes, _)) = self.files.remove(&key) {
            self.held -= bytes;
            let _ = std::fs::remove_file(self.path(key));
        }
    }

    /// Writes `key`'s snapshot bytes, then drops oldest spills until the
    /// disk budget holds. A write failure (full disk, bad permissions)
    /// silently skips the spill — the tier is an accelerator, never a
    /// correctness dependency.
    fn spill(&mut self, key: u64, bytes: &[u8], tick: u64) -> bool {
        if bytes.len() > self.budget {
            return false;
        }
        if std::fs::write(self.path(key), bytes).is_err() {
            return false;
        }
        if let Some((old, _)) = self.files.insert(key, (bytes.len(), tick)) {
            self.held -= old;
        }
        self.held += bytes.len();
        while self.held > self.budget && self.files.len() > 1 {
            let victim = self
                .files
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, (_, at))| *at)
                .map(|(k, _)| *k);
            match victim {
                Some(v) => self.remove(v),
                None => break,
            }
        }
        true
    }

    fn load(&mut self, key: u64) -> Option<StageSnapshot> {
        if !self.files.contains_key(&key) {
            return None;
        }
        let parsed = std::fs::read(self.path(key))
            .ok()
            .and_then(|buf| StageSnapshot::from_bytes(&buf));
        // Promote on hit, discard on corruption: either way the file's
        // disk residency ends here.
        self.remove(key);
        parsed
    }
}

#[derive(Debug)]
struct CacheEntry {
    snapshot: StageSnapshot,
    bytes: usize,
    last_used: u64,
}

impl StageCache {
    /// An empty, unbounded cache.
    pub fn new() -> StageCache {
        StageCache::default()
    }

    /// An empty cache that evicts least-recently-used entries whenever
    /// the held snapshots exceed `budget` bytes (approximate footprint;
    /// a single snapshot larger than the budget is still admitted alone,
    /// so sweeps degrade to cold behavior rather than failing).
    pub fn with_budget(budget: usize) -> StageCache {
        StageCache {
            budget: Some(budget),
            ..StageCache::default()
        }
    }

    /// Attaches a disk tier under the LRU: entries evicted from memory
    /// are spilled to `{key:016x}` files in `dir` (bounded by `budget`
    /// bytes, oldest spill dropped first), and a memory miss consults
    /// the directory before declaring a miss — a hit is promoted back
    /// into memory and its file deleted. Existing spill files in `dir`
    /// warm-start the tier, so a sweep can resume a previous session's
    /// cache.
    ///
    /// # Errors
    ///
    /// I/O failures creating or scanning `dir`.
    pub fn with_disk_tier(
        mut self,
        dir: impl Into<PathBuf>,
        budget: usize,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut tier = DiskTier {
            dir,
            budget,
            held: 0,
            files: HashMap::new(),
        };
        for entry in std::fs::read_dir(&tier.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.len() != 16 {
                continue;
            }
            let Ok(key) = u64::from_str_radix(name, 16) else {
                continue;
            };
            let bytes = entry.metadata()?.len() as usize;
            tier.held += bytes;
            tier.files.insert(key, (bytes, 0));
        }
        self.disk = Some(tier);
        Ok(self)
    }

    /// Number of stage executions answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cacheable stage executions that ran cold (and were
    /// stored).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries evicted to stay under the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of lookups answered from the disk tier (always 0 without
    /// [`StageCache::with_disk_tier`]).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits
    }

    /// Number of evicted snapshots spilled to the disk tier.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Approximate bytes of snapshot data currently held.
    pub fn held_bytes(&self) -> usize {
        self.held_bytes
    }

    /// Fraction of cacheable stage executions answered from the cache
    /// (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of distinct stage outputs held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no stage output is held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries (the counters persist).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.held_bytes = 0;
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    pub(crate) fn lookup(&mut self, key: u64) -> Option<StageSnapshot> {
        let tick = self.touch();
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = tick;
            self.hits += 1;
            return Some(entry.snapshot.clone());
        }
        // Memory miss: consult the disk tier and promote on a hit.
        if let Some(snapshot) = self.disk.as_mut().and_then(|d| d.load(key)) {
            self.hits += 1;
            self.disk_hits += 1;
            let bytes = snapshot.approx_bytes();
            self.entries.insert(
                key,
                CacheEntry {
                    snapshot: snapshot.clone(),
                    bytes,
                    last_used: tick,
                },
            );
            self.held_bytes += bytes;
            self.enforce_budget(key);
            return Some(snapshot);
        }
        self.misses += 1;
        None
    }

    pub(crate) fn store(&mut self, key: u64, snapshot: StageSnapshot) {
        let tick = self.touch();
        let bytes = snapshot.approx_bytes();
        if let Some(old) = self.entries.insert(
            key,
            CacheEntry {
                snapshot,
                bytes,
                last_used: tick,
            },
        ) {
            self.held_bytes -= old.bytes;
        }
        self.held_bytes += bytes;
        self.enforce_budget(key);
    }

    /// Evicts least-recently-used entries until the budget holds,
    /// spilling each victim to the disk tier when one is attached.
    /// `just_stored` is never evicted in its own store (otherwise a
    /// snapshot above the budget would thrash forever).
    fn enforce_budget(&mut self, just_stored: u64) {
        let Some(budget) = self.budget else { return };
        while self.held_bytes > budget && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != just_stored)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { return };
            if let Some(entry) = self.entries.remove(&victim) {
                self.held_bytes -= entry.bytes;
                self.evictions += 1;
                if let Some(disk) = &mut self.disk {
                    let tick = self.tick;
                    if disk.spill(victim, &entry.snapshot.to_bytes(), tick) {
                        self.spills += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_inputs_and_is_stable() {
        let mut a = Fnv::new();
        a.write_f64s(&[1.0, 2.0]);
        let mut b = Fnv::new();
        b.write_f64s(&[1.0, 2.0]);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.write_f64s(&[2.0, 1.0]);
        assert_ne!(a.finish(), c.finish());
        // 0.0 and -0.0 hash differently (bit fingerprint, not value).
        let mut z = Fnv::new();
        z.write_f64s(&[0.0]);
        let mut nz = Fnv::new();
        nz.write_f64s(&[-0.0]);
        assert_ne!(z.finish(), nz.finish());
    }

    #[test]
    fn fnv_length_prefixing_avoids_concat_collisions() {
        let mut a = Fnv::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    fn snapshot(rows: usize) -> StageSnapshot {
        StageSnapshot {
            parts: vec![Matrix::zeros(rows, 8)],
            weights: None,
            deltas: vec![],
            basis: None,
            source_basis: None,
            basis_shared: false,
            appended_projections: vec![],
            jl: crate::engine::JlBook::default(),
            ops_delta: 3,
            seconds_delta: 0.0,
        }
    }

    #[test]
    fn cache_counters_and_inventory() {
        let mut cache = StageCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.hit_rate(), 0.0);
        assert!(cache.lookup(7).is_none());
        cache.store(7, snapshot(1));
        assert!(cache.lookup(7).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert!(cache.held_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.held_bytes(), 0);
        assert_eq!(cache.hits(), 1, "counters persist across clear");
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let one = snapshot(100).approx_bytes();
        // Room for two snapshots, not three.
        let mut cache = StageCache::with_budget(2 * one + one / 2);
        cache.store(1, snapshot(100));
        cache.store(2, snapshot(100));
        assert_eq!(cache.evictions(), 0);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(1).is_some());
        cache.store(3, snapshot(100));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(2).is_none(), "LRU entry evicted");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(3).is_some());
        assert!(cache.held_bytes() <= 2 * one + one / 2);
    }

    #[test]
    fn oversized_snapshot_is_admitted_alone() {
        let mut cache = StageCache::with_budget(8);
        cache.store(1, snapshot(1000));
        assert_eq!(cache.len(), 1, "a single oversized entry is kept");
        cache.store(2, snapshot(1000));
        assert_eq!(cache.len(), 1, "storing another evicts the previous");
        assert!(cache.lookup(2).is_some());
        assert!(cache.lookup(1).is_none());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut cache = StageCache::new();
        for key in 0..64 {
            cache.store(key, snapshot(50));
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.evictions(), 0);
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ekm-cache-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rich_snapshot() -> StageSnapshot {
        StageSnapshot {
            parts: vec![Matrix::from_fn(9, 5, |i, j| (i * 7 + j) as f64 * 0.31)],
            weights: Some(vec![vec![1.5, 2.5], vec![0.25]]),
            deltas: vec![0.125, -0.5],
            basis: Some(Matrix::from_fn(5, 2, |i, j| (i + j) as f64 * 1.75)),
            source_basis: None,
            basis_shared: true,
            appended_projections: vec![
                MaybeProjection::Identity { dim: 5 },
                MaybeProjection::generate(JlKind::Gaussian, 10, 4, 99),
                MaybeProjection::generate(JlKind::Achlioptas, 8, 3, 7),
            ],
            jl: crate::engine::JlBook {
                jl_count: 2,
                jl_after_used: true,
                any_reduction: true,
            },
            ops_delta: 12345,
            seconds_delta: 0.75,
        }
    }

    fn assert_snapshot_bits_eq(a: &StageSnapshot, b: &StageSnapshot) {
        let bits = |m: &Matrix| {
            (
                m.shape(),
                m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(a.parts.len(), b.parts.len());
        for (x, y) in a.parts.iter().zip(&b.parts) {
            assert_eq!(bits(x), bits(y));
        }
        assert_eq!(a.weights, b.weights);
        assert_eq!(
            a.deltas.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.deltas.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        for (x, y) in [(&a.basis, &b.basis), (&a.source_basis, &b.source_basis)] {
            assert_eq!(x.is_some(), y.is_some());
            if let (Some(x), Some(y)) = (x, y) {
                assert_eq!(bits(x), bits(y));
            }
        }
        assert_eq!(a.basis_shared, b.basis_shared);
        assert_eq!(a.appended_projections.len(), b.appended_projections.len());
        for (x, y) in a.appended_projections.iter().zip(&b.appended_projections) {
            match (x, y) {
                (MaybeProjection::Identity { dim: dx }, MaybeProjection::Identity { dim: dy }) => {
                    assert_eq!(dx, dy)
                }
                (MaybeProjection::Jl(px), MaybeProjection::Jl(py)) => {
                    assert_eq!(bits(px.matrix()), bits(py.matrix()), "regen diverged")
                }
                _ => panic!("projection kinds diverge"),
            }
        }
        assert_eq!(a.jl, b.jl);
        assert_eq!(a.ops_delta, b.ops_delta);
        assert_eq!(a.seconds_delta.to_bits(), b.seconds_delta.to_bits());
    }

    #[test]
    fn snapshot_disk_codec_is_bit_exact() {
        let snap = rich_snapshot();
        let restored = StageSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_snapshot_bits_eq(&snap, &restored);
        assert!(StageSnapshot::from_bytes(b"junk").is_none());
        let mut torn = snap.to_bytes();
        torn.truncate(torn.len() / 2);
        assert!(StageSnapshot::from_bytes(&torn).is_none());
    }

    #[test]
    fn eviction_spills_to_disk_and_lookup_promotes() {
        let dir = scratch_dir("spill");
        // Room for the big snapshot alone: storing it evicts the rich one.
        let one = snapshot(100).approx_bytes();
        let mut cache = StageCache::with_budget(one)
            .with_disk_tier(&dir, 1 << 20)
            .unwrap();
        cache.store(1, rich_snapshot());
        cache.store(2, snapshot(100));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.spills(), 1);
        assert!(dir.join(format!("{:016x}", 1u64)).exists());
        // The spilled entry is still a hit — promoted back and its file
        // reclaimed.
        let restored = cache.lookup(1).expect("disk tier answers");
        assert_snapshot_bits_eq(&rich_snapshot(), &restored);
        assert_eq!(cache.disk_hits(), 1);
        assert_eq!(cache.misses(), 0);
        assert!(!dir.join(format!("{:016x}", 1u64)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_file_is_a_miss_and_reclaimed() {
        let dir = scratch_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("{:016x}", 9u64)), b"garbage").unwrap();
        let mut cache = StageCache::new().with_disk_tier(&dir, 1 << 20).unwrap();
        assert!(cache.lookup(9).is_none());
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.disk_hits(), 0);
        assert!(!dir.join(format!("{:016x}", 9u64)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_warm_starts_from_a_previous_session() {
        let dir = scratch_dir("warm");
        let one = snapshot(100).approx_bytes();
        {
            let mut cache = StageCache::with_budget(one)
                .with_disk_tier(&dir, 1 << 20)
                .unwrap();
            cache.store(1, rich_snapshot());
            cache.store(2, snapshot(100));
            assert_eq!(cache.spills(), 1);
        }
        let mut fresh = StageCache::new().with_disk_tier(&dir, 1 << 20).unwrap();
        let restored = fresh.lookup(1).expect("warm-started spill answers");
        assert_snapshot_bits_eq(&rich_snapshot(), &restored);
        assert_eq!(fresh.disk_hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_drops_oldest_spills() {
        let dir = scratch_dir("budget");
        let one = snapshot(40).approx_bytes();
        let file = snapshot(40).to_bytes().len();
        // Memory holds one entry; disk holds two files, not three.
        let mut cache = StageCache::with_budget(one + one / 2)
            .with_disk_tier(&dir, 2 * file + file / 2)
            .unwrap();
        for key in 1..=4 {
            cache.store(key, snapshot(40));
        }
        assert_eq!(cache.spills(), 3);
        let on_disk = (1..=4)
            .filter(|k| dir.join(format!("{k:016x}")).exists())
            .count();
        assert_eq!(on_disk, 2, "disk budget keeps two files");
        assert!(
            !dir.join(format!("{:016x}", 1u64)).exists(),
            "oldest spill dropped"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
