//! Stage-output memoization for pipeline sweeps.
//!
//! `ekm sweep` runs many stage compositions over the *same* dataset, and
//! compositions routinely share a prefix — e.g. `jl,fss` under every QT
//! width. The engine's source-side stages (`jl`, `fss`, `stream`) are
//! pure, seed-deterministic functions of (stage config, shared
//! parameters, upstream summary state), so their outputs can be memoized
//! across pipelines: a [`StageCache`] maps a 64-bit key — stage config ⊕
//! parameter knobs ⊕ a fingerprint of every upstream bit the stage can
//! observe — to the snapshot of the state the stage produced.
//!
//! Cache hits are **bit-identical to a cold run by construction**: the
//! key covers all inputs of the stage's computation, the snapshot stores
//! the complete post-stage state delta (including the deterministic
//! operation count), and the interactive stages (`dispca`, `disss`) and
//! the transmission phase are never cached — their traffic must flow
//! through the live [`ekm_net::Transport`], which keeps the bit ledger
//! of a cached sweep identical to an uncached one.

use crate::projection::MaybeProjection;
use ekm_linalg::Matrix;
use std::collections::HashMap;

/// Incremental FNV-1a 64-bit hasher — deterministic across runs and
/// platforms, used for both stage keys and data fingerprints.
#[derive(Debug, Clone)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    pub fn write_f64s(&mut self, vs: &[f64]) {
        self.write_usize(vs.len());
        for v in vs {
            self.write_u64(v.to_bits());
        }
    }

    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    pub fn write_matrix(&mut self, m: &Matrix) {
        self.write_usize(m.rows());
        self.write_usize(m.cols());
        self.write_f64s(m.as_slice());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The complete state delta a cached stage replays on a hit: the fields
/// the source-side stages overwrite wholesale, the projection a DR stage
/// appends, the positional JL bookkeeping, and the deterministic
/// operation count the stage would have charged.
#[derive(Debug, Clone)]
pub(crate) struct StageSnapshot {
    pub parts: Vec<Matrix>,
    pub weights: Option<Vec<Vec<f64>>>,
    pub deltas: Vec<f64>,
    pub basis: Option<Matrix>,
    pub source_basis: Option<Matrix>,
    pub basis_shared: bool,
    pub appended_projections: Vec<MaybeProjection>,
    pub jl: crate::engine::JlBook,
    pub ops_delta: u64,
    /// Per-source compute seconds the cold run charged for this stage,
    /// replayed on a hit so cached sweeps report comparable source
    /// timings (the deterministic `ops_delta` is the exact counterpart).
    pub seconds_delta: f64,
}

impl StageSnapshot {
    /// Approximate heap footprint of the snapshot, for the LRU budget.
    /// Matrices and weight vectors dominate; per-entry bookkeeping is
    /// charged a small flat overhead.
    fn approx_bytes(&self) -> usize {
        let matrix_bytes = |m: &Matrix| m.rows() * m.cols() * 8 + 64;
        let mut bytes = 128;
        bytes += self.parts.iter().map(&matrix_bytes).sum::<usize>();
        if let Some(all) = &self.weights {
            bytes += all.iter().map(|w| w.len() * 8 + 24).sum::<usize>();
        }
        bytes += self.deltas.len() * 8;
        for b in [&self.basis, &self.source_basis].into_iter().flatten() {
            bytes += matrix_bytes(b);
        }
        for pi in &self.appended_projections {
            if let MaybeProjection::Jl(p) = pi {
                bytes += p.source_dim() * p.target_dim() * 8 + 64;
            }
        }
        bytes
    }
}

/// Memoized per-stage outputs, shared across the pipelines of a sweep.
///
/// Create one cache, pass it to every
/// [`StagePipeline::run_cached`](crate::engine::StagePipeline::run_cached) /
/// [`run_shards_cached`](crate::engine::StagePipeline::run_shards_cached)
/// call of the sweep, and shared prefixes are computed once; outputs and
/// bit accounting are bit-identical to uncached runs.
///
/// # Example
///
/// ```
/// use ekm_core::cache::StageCache;
/// use ekm_core::engine::StagePipeline;
/// use ekm_core::params::SummaryParams;
/// use ekm_net::Network;
/// use ekm_linalg::Matrix;
///
/// let data = Matrix::from_fn(300, 16, |i, j| ((i * 31 + j * 17) % 13) as f64 * 0.2);
/// let params = SummaryParams::practical(2, 300, 16).with_seed(7);
/// let mut cache = StageCache::new();
/// for stages in ["jl,fss,qt:6", "jl,fss,qt:10"] {
///     let pipe = StagePipeline::from_names(stages, params.clone()).unwrap();
///     let mut net = Network::new(1);
///     pipe.run_cached(&data, &mut net, &mut cache).unwrap();
/// }
/// // The second pipeline replayed the shared jl,fss prefix.
/// assert_eq!(cache.hits(), 2);
/// assert_eq!(cache.misses(), 2);
/// ```
#[derive(Debug, Default)]
pub struct StageCache {
    entries: HashMap<u64, CacheEntry>,
    /// Optional byte budget; `None` caches without bound.
    budget: Option<usize>,
    /// Approximate bytes currently held.
    held_bytes: usize,
    /// Monotonic recency clock (bumped on every lookup hit and store).
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct CacheEntry {
    snapshot: StageSnapshot,
    bytes: usize,
    last_used: u64,
}

impl StageCache {
    /// An empty, unbounded cache.
    pub fn new() -> StageCache {
        StageCache::default()
    }

    /// An empty cache that evicts least-recently-used entries whenever
    /// the held snapshots exceed `budget` bytes (approximate footprint;
    /// a single snapshot larger than the budget is still admitted alone,
    /// so sweeps degrade to cold behavior rather than failing).
    pub fn with_budget(budget: usize) -> StageCache {
        StageCache {
            budget: Some(budget),
            ..StageCache::default()
        }
    }

    /// Number of stage executions answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cacheable stage executions that ran cold (and were
    /// stored).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries evicted to stay under the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate bytes of snapshot data currently held.
    pub fn held_bytes(&self) -> usize {
        self.held_bytes
    }

    /// Fraction of cacheable stage executions answered from the cache
    /// (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of distinct stage outputs held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no stage output is held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries (the counters persist).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.held_bytes = 0;
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    pub(crate) fn lookup(&mut self, key: u64) -> Option<StageSnapshot> {
        let tick = self.touch();
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits += 1;
                Some(entry.snapshot.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(crate) fn store(&mut self, key: u64, snapshot: StageSnapshot) {
        let tick = self.touch();
        let bytes = snapshot.approx_bytes();
        if let Some(old) = self.entries.insert(
            key,
            CacheEntry {
                snapshot,
                bytes,
                last_used: tick,
            },
        ) {
            self.held_bytes -= old.bytes;
        }
        self.held_bytes += bytes;
        self.enforce_budget(key);
    }

    /// Evicts least-recently-used entries until the budget holds.
    /// `just_stored` is never evicted in its own store (otherwise a
    /// snapshot above the budget would thrash forever).
    fn enforce_budget(&mut self, just_stored: u64) {
        let Some(budget) = self.budget else { return };
        while self.held_bytes > budget && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != just_stored)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { return };
            if let Some(entry) = self.entries.remove(&victim) {
                self.held_bytes -= entry.bytes;
                self.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_inputs_and_is_stable() {
        let mut a = Fnv::new();
        a.write_f64s(&[1.0, 2.0]);
        let mut b = Fnv::new();
        b.write_f64s(&[1.0, 2.0]);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.write_f64s(&[2.0, 1.0]);
        assert_ne!(a.finish(), c.finish());
        // 0.0 and -0.0 hash differently (bit fingerprint, not value).
        let mut z = Fnv::new();
        z.write_f64s(&[0.0]);
        let mut nz = Fnv::new();
        nz.write_f64s(&[-0.0]);
        assert_ne!(z.finish(), nz.finish());
    }

    #[test]
    fn fnv_length_prefixing_avoids_concat_collisions() {
        let mut a = Fnv::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    fn snapshot(rows: usize) -> StageSnapshot {
        StageSnapshot {
            parts: vec![Matrix::zeros(rows, 8)],
            weights: None,
            deltas: vec![],
            basis: None,
            source_basis: None,
            basis_shared: false,
            appended_projections: vec![],
            jl: crate::engine::JlBook::default(),
            ops_delta: 3,
            seconds_delta: 0.0,
        }
    }

    #[test]
    fn cache_counters_and_inventory() {
        let mut cache = StageCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.hit_rate(), 0.0);
        assert!(cache.lookup(7).is_none());
        cache.store(7, snapshot(1));
        assert!(cache.lookup(7).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert!(cache.held_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.held_bytes(), 0);
        assert_eq!(cache.hits(), 1, "counters persist across clear");
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let one = snapshot(100).approx_bytes();
        // Room for two snapshots, not three.
        let mut cache = StageCache::with_budget(2 * one + one / 2);
        cache.store(1, snapshot(100));
        cache.store(2, snapshot(100));
        assert_eq!(cache.evictions(), 0);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(1).is_some());
        cache.store(3, snapshot(100));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(2).is_none(), "LRU entry evicted");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(3).is_some());
        assert!(cache.held_bytes() <= 2 * one + one / 2);
    }

    #[test]
    fn oversized_snapshot_is_admitted_alone() {
        let mut cache = StageCache::with_budget(8);
        cache.store(1, snapshot(1000));
        assert_eq!(cache.len(), 1, "a single oversized entry is kept");
        cache.store(2, snapshot(1000));
        assert_eq!(cache.len(), 1, "storing another evicts the previous");
        assert!(cache.lookup(2).is_some());
        assert!(cache.lookup(1).is_none());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut cache = StageCache::new();
        for key in 0..64 {
            cache.store(key, snapshot(50));
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.evictions(), 0);
    }
}
