use std::error::Error;
use std::fmt;

/// Errors produced by the end-to-end pipelines.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A linear-algebra primitive failed.
    Linalg(ekm_linalg::LinalgError),
    /// A clustering primitive failed.
    Clustering(ekm_clustering::ClusteringError),
    /// Coreset construction failed.
    Coreset(ekm_coreset::CoresetError),
    /// The simulated network failed (wire format bugs surface here).
    Net(ekm_net::NetError),
    /// Quantization configuration failed.
    Quant(ekm_quant::QuantError),
    /// A pipeline received an invalid configuration.
    InvalidConfig {
        /// Explanation.
        reason: &'static str,
    },
    /// A protocol received an unexpected message.
    Protocol {
        /// Explanation.
        reason: &'static str,
    },
    /// A stage list contained an unknown stage token.
    InvalidStageName {
        /// The offending token.
        token: String,
    },
    /// The command-round journal is unusable: corrupt records, a
    /// configuration mismatch, or a replay that diverged from the
    /// driver's deterministic command sequence.
    Journal {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            CoreError::Clustering(e) => write!(f, "clustering failure: {e}"),
            CoreError::Coreset(e) => write!(f, "coreset failure: {e}"),
            CoreError::Net(e) => write!(f, "network failure: {e}"),
            CoreError::Quant(e) => write!(f, "quantization failure: {e}"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            CoreError::InvalidStageName { token } => write!(
                f,
                "unknown stage '{token}' (valid stages: {})",
                crate::stage::Stage::vocabulary()
            ),
            CoreError::Journal { reason } => write!(f, "journal failure: {reason}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::Clustering(e) => Some(e),
            CoreError::Coreset(e) => Some(e),
            CoreError::Net(e) => Some(e),
            CoreError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ekm_linalg::LinalgError> for CoreError {
    fn from(e: ekm_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<ekm_clustering::ClusteringError> for CoreError {
    fn from(e: ekm_clustering::ClusteringError) -> Self {
        CoreError::Clustering(e)
    }
}

impl From<ekm_coreset::CoresetError> for CoreError {
    fn from(e: ekm_coreset::CoresetError) -> Self {
        CoreError::Coreset(e)
    }
}

impl From<ekm_net::NetError> for CoreError {
    fn from(e: ekm_net::NetError) -> Self {
        CoreError::Net(e)
    }
}

impl From<ekm_quant::QuantError> for CoreError {
    fn from(e: ekm_quant::QuantError) -> Self {
        CoreError::Quant(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: CoreError = ekm_linalg::LinalgError::EmptyMatrix { op: "x" }.into();
        assert!(e.to_string().contains("linear algebra"));
        assert!(Error::source(&e).is_some());
        let e: CoreError = ekm_clustering::ClusteringError::EmptyInput.into();
        assert!(Error::source(&e).is_some());
        let e: CoreError = ekm_net::NetError::UnknownMessageTag { tag: 0 }.into();
        assert!(Error::source(&e).is_some());
        let e = CoreError::InvalidConfig { reason: "bad" };
        assert!(e.to_string().contains("bad"));
        assert!(Error::source(&e).is_none());
        let e = CoreError::Protocol { reason: "odd" };
        assert!(e.to_string().contains("odd"));
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CoreError>();
    }
}
