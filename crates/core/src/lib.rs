//! Communication-efficient k-means pipelines — the paper's core
//! contribution (Algorithms 1–4) together with the state-of-the-art
//! baselines it compares against (FSS, BKLW) and the quantized variants of
//! all of them (Section 6).
//!
//! # The pipelines
//!
//! Single data source (§4):
//!
//! | Pipeline | Paper | Summary sent to the server |
//! |---|---|---|
//! | [`pipelines::NoReduction`] | "NR" baseline | the raw dataset |
//! | [`pipelines::Fss`] | FSS \[11\] | PCA-subspace coreset: coordinates **+ basis** (the `O(kd/ε²)` cost of Theorem 4.1) |
//! | [`pipelines::JlFss`] | **Algorithm 1** (JL+FSS) | coreset of the JL-projected data, coordinates + in-projection basis — `O(k·log n/ε⁴)` |
//! | [`pipelines::FssJl`] | **Algorithm 2** (FSS+JL) | JL-projected coreset points, no basis — `Õ(k³/ε⁶)` |
//! | [`pipelines::JlFssJl`] | **Algorithm 3** (JL+FSS+JL) | doubly-projected coreset points — `Õ(k³/ε⁶)` at near-linear complexity |
//!
//! Multiple data sources (§5):
//!
//! | Pipeline | Paper | Per-source uplink |
//! |---|---|---|
//! | [`distributed::Bklw`] | BKLW \[27\] | local SVD summary (`O(kd/ε²)`) + disSS samples |
//! | [`distributed::JlBklw`] | **Algorithm 4** (JL+BKLW) | same in JL space (`O(k·log n/ε⁴)`) |
//!
//! All pipelines run over an [`ekm_net::Network`] whose counters measure
//! the *actual encoded bits*, and every JL projection is regenerated from
//! a seed shared between sources and server — never transmitted — exactly
//! as the paper prescribes (§3.2 Remark).
//!
//! Every named pipeline above is a *canned stage list* over the generic
//! [`engine::StagePipeline`]; arbitrary DR/CR/QT compositions — points in
//! the §4 "order matters" space the paper never evaluated — run through
//! the same engine (`StagePipeline::from_names("jl,fss,qt,jl", params)`).
//! Multi-source stage work executes concurrently with exact per-source
//! bit accounting.
//!
//! # Example
//!
//! ```
//! use ekm_core::params::SummaryParams;
//! use ekm_core::pipelines::{CentralizedPipeline, JlFss, NoReduction};
//! use ekm_net::Network;
//! use ekm_linalg::Matrix;
//!
//! let data = Matrix::from_fn(2000, 30, |i, j| {
//!     ((i % 4) as f64) * 3.0 + ((i * 31 + j * 17) % 11) as f64 * 0.05
//! });
//! let params = SummaryParams::practical(2, data.rows(), data.cols())
//!     .with_coreset_size(100)
//!     .with_seed(7);
//!
//! let mut net = Network::new(1);
//! let out = JlFss::new(params).run(&data, &mut net).unwrap();
//! assert_eq!(out.centers.shape(), (2, 30));
//! // Far fewer bits than shipping the raw data:
//! let raw_bits = 2000 * 30 * 64;
//! assert!(out.uplink_bits < raw_bits / 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
mod complexity;
pub mod distributed;
pub mod driver;
pub mod engine;
mod error;
pub mod evaluation;
pub mod executor;
pub mod health;
pub mod journal;
pub mod output;
pub mod params;
pub mod pipelines;
pub mod projection;
pub mod server;
pub mod stage;

pub use cache::StageCache;
pub use driver::run_driver;
pub use engine::StagePipeline;
pub use error::CoreError;
pub use executor::{SourceExecutor, SourceRunReport};
pub use health::{Health, HealthMachine, RecoveryAction};
pub use journal::JournalingTransport;
pub use output::{Degradation, Recovery, RunOutput};
pub use params::{SummaryParams, Topology};
pub use stage::Stage;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
