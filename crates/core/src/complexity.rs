//! Deterministic operation-count proxies for data-source compute.
//!
//! The paper compares pipelines on three axes: k-means cost,
//! communication bits, and *source-side complexity* (Table 2). Bits are
//! measured exactly by the transport counters; complexity was previously
//! proxied only by wall-clock seconds, which flake under parallel test
//! load. These formulas count the dominant floating-point operations of
//! each source-side phase from input shapes alone, so they are exact
//! across runs, machines, thread counts, and transport backends — the
//! right quantity for the Table 2 ordering assertions (the wall-clock
//! fields remain available for reporting).
//!
//! The constants are proxies, not cycle counts: what matters is that the
//! *asymptotic* terms match the paper's complexity column (`nd·min(n,d)`
//! for an exact SVD, `nd·t` for a projection, …), so cross-pipeline
//! ratios reflect Table 2.

/// Dense matmul / projection of an `n × d` block to `t` columns.
pub(crate) fn matmul(n: usize, d: usize, t: usize) -> u64 {
    (n as u64) * (d as u64) * (t as u64)
}

/// Exact (thin) SVD of an `n × d` block — the `nd·min(n,d)` term that
/// separates FSS-first from JL-first pipelines. The constant reflects
/// that the Gram/eigen route runs several iterative sweeps per
/// eliminated dimension, where a matmul touches each entry once.
pub(crate) fn svd(n: usize, d: usize) -> u64 {
    8 * (n as u64) * (d as u64) * (n.min(d) as u64)
}

/// Bicriteria approximation on `n × d` with `k` targets (a few
/// D²-sampling passes).
pub(crate) fn bicriteria(n: usize, d: usize, k: usize) -> u64 {
    8 * (n as u64) * (d as u64) * (k as u64)
}

/// Full FSS coreset construction on an `n × d` block: exact SVD to the
/// PCA subspace, bicriteria in it, then sensitivity sampling.
pub(crate) fn fss(n: usize, d: usize, k: usize) -> u64 {
    svd(n, d) + bicriteria(n, d.min(n), k) + matmul(n, d, 1)
}

/// Streaming merge-and-reduce summarization of an `n × d` shard with
/// leaf size `b`: every point participates in `O(log(n/b))` reduce
/// steps, each a D²-sampling (bicriteria-style) pass over its level.
pub(crate) fn stream(n: usize, d: usize, k: usize, leaf: usize) -> u64 {
    let levels = n.div_ceil(leaf.max(1)).max(1).ilog2() as u64 + 1;
    bicriteria(n, d, k) * levels
}

/// Rounding quantization of an `n × d` block for the wire.
pub(crate) fn quantize(n: usize, d: usize) -> u64 {
    (n as u64) * (d as u64)
}

/// Nearest-center assignment of `n × d` points to `k` centers.
pub(crate) fn assign(n: usize, d: usize, k: usize) -> u64 {
    matmul(n, d, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymptotic_orderings_match_table2() {
        // Exact SVD on wide data dwarfs a JL projection to t ≪ d.
        let (n, d, t, k) = (2000, 784, 40, 10);
        assert!(svd(n, d) > 10 * matmul(n, d, t));
        // FSS in the projected space is far cheaper than in the original.
        assert!(fss(n, t, k) * 4 < fss(n, d, k));
        // Quantization is negligible next to any summary construction.
        assert!(quantize(n, d) * 100 < fss(n, d, k));
        assert!(assign(n, d, k) < bicriteria(n, d, k));
    }
}
