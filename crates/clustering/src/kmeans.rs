//! Multi-restart k-means driver: the server-side `kmeans(S', w, k)`
//! primitive of Algorithms 1–4.

use crate::cost::validate_weights;
use crate::init::kmeanspp_centers_with;
use crate::lloyd::{lloyd, LloydConfig};
use crate::{ClusteringError, Result};
use ekm_linalg::distance::Compute;
use ekm_linalg::random::{derive_seed, rng_from_seed};
use ekm_linalg::Matrix;

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Cluster centers (`k × d`).
    pub centers: Matrix,
    /// Final weighted cost on the training data.
    pub inertia: f64,
    /// Label of each training point.
    pub labels: Vec<usize>,
    /// Lloyd iterations of the winning restart.
    pub iterations: usize,
    /// Number of restarts performed.
    pub restarts: usize,
}

impl KMeansModel {
    /// Predicts the nearest-center label for each row of `points`.
    ///
    /// # Errors
    ///
    /// Propagates assignment errors (empty input, dimension mismatch).
    pub fn predict(&self, points: &Matrix) -> Result<Vec<usize>> {
        Ok(crate::cost::assign(points, &self.centers)?.labels)
    }

    /// k-means cost of `points` against this model's centers.
    ///
    /// # Errors
    ///
    /// Propagates assignment errors.
    pub fn score(&self, points: &Matrix) -> Result<f64> {
        crate::cost::cost(points, &self.centers)
    }
}

/// Builder-style configuration for k-means clustering.
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
/// use ekm_clustering::kmeans::KMeans;
///
/// let p = Matrix::from_rows(&[vec![0.0], vec![0.2], vec![9.0], vec![9.2]]);
/// let model = KMeans::new(2).with_n_init(4).with_seed(1).fit(&p).unwrap();
/// assert!(model.inertia < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    tol: f64,
    n_init: usize,
    seed: u64,
    shards: usize,
    compute: Compute,
}

impl KMeans {
    /// Creates a configuration for `k` clusters with the defaults
    /// `max_iter = 100`, `tol = 1e-7`, `n_init = 3`, `seed = 0`,
    /// `shards = 1` (sequential centroid updates), `compute = F64`.
    pub fn new(k: usize) -> Self {
        KMeans {
            k,
            max_iter: 100,
            tol: 1e-7,
            n_init: 3,
            seed: 0,
            shards: 1,
            compute: Compute::F64,
        }
    }

    /// Sets the maximum Lloyd iterations per restart.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Sets the relative-improvement convergence tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the number of k-means++ restarts (best inertia wins).
    pub fn with_n_init(mut self, n_init: usize) -> Self {
        self.n_init = n_init.max(1);
        self
    }

    /// Sets the RNG seed controlling all restarts.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count of the sharded Lloyd centroid update
    /// (`0` follows the hardware). Centers are bit-identical at every
    /// setting — sharding only changes wall-clock time.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the scalar precision of the distance kernels
    /// ([`Compute::F64`] by default). `F64` is the bit-reproducibility
    /// reference; `F32` runs seeding and assignment in single precision
    /// for speed, with centroid accumulation still in f64.
    pub fn with_compute(mut self, compute: Compute) -> Self {
        self.compute = compute;
        self
    }

    /// Number of clusters this configuration will fit.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fits unweighted k-means to the rows of `points`.
    ///
    /// # Errors
    ///
    /// See [`KMeans::fit_weighted`].
    pub fn fit(&self, points: &Matrix) -> Result<KMeansModel> {
        let w = vec![1.0; points.rows()];
        self.fit_weighted(points, &w)
    }

    /// Fits weighted k-means: minimizes `Σ w_i · min_x ‖p_i − x‖²`.
    ///
    /// Runs `n_init` k-means++ initializations followed by Lloyd iteration
    /// and returns the best outcome.
    ///
    /// # Errors
    ///
    /// * [`ClusteringError::EmptyInput`] for an empty dataset.
    /// * [`ClusteringError::InvalidK`] if `k` is 0 or exceeds the number of
    ///   positive-weight points.
    /// * [`ClusteringError::InvalidWeights`] for malformed weights.
    pub fn fit_weighted(&self, points: &Matrix, weights: &[f64]) -> Result<KMeansModel> {
        if points.is_empty() {
            return Err(ClusteringError::EmptyInput);
        }
        validate_weights(weights, points.rows())?;
        let positive = weights.iter().filter(|&&w| w > 0.0).count();
        if self.k == 0 || self.k > positive {
            return Err(ClusteringError::InvalidK {
                k: self.k,
                n: positive,
            });
        }
        let config = LloydConfig {
            max_iter: self.max_iter,
            tol: self.tol,
            shards: self.shards,
            compute: self.compute,
        };
        let mut best: Option<KMeansModel> = None;
        for restart in 0..self.n_init {
            let mut rng = rng_from_seed(derive_seed(self.seed, restart as u64));
            let init = kmeanspp_centers_with(&mut rng, points, weights, self.k, self.compute)?;
            let out = lloyd(points, weights, &init, &config)?;
            let better = best
                .as_ref()
                .map(|b| out.inertia < b.inertia)
                .unwrap_or(true);
            if better {
                best = Some(KMeansModel {
                    centers: out.centers,
                    inertia: out.inertia,
                    labels: out.assignment.labels,
                    iterations: out.iterations,
                    restarts: restart + 1,
                });
            }
        }
        let mut model = best.expect("n_init >= 1 guarantees a model");
        model.restarts = self.n_init;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs(per: usize) -> Matrix {
        let mut rows = Vec::new();
        for i in 0..per {
            let jitter = (i % 7) as f64 * 0.01;
            rows.push(vec![0.0 + jitter, 0.0]);
            rows.push(vec![10.0 + jitter, 10.0]);
            rows.push(vec![-10.0 + jitter, 10.0]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn recovers_three_blobs() {
        let p = three_blobs(30);
        let model = KMeans::new(3).with_seed(42).fit(&p).unwrap();
        assert!(model.inertia < 1.0, "inertia {}", model.inertia);
        // Each blob's first point should map to a distinct label.
        let l0 = model.labels[0];
        let l1 = model.labels[1];
        let l2 = model.labels[2];
        assert_ne!(l0, l1);
        assert_ne!(l1, l2);
        assert_ne!(l0, l2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = three_blobs(10);
        let m1 = KMeans::new(3).with_seed(9).fit(&p).unwrap();
        let m2 = KMeans::new(3).with_seed(9).fit(&p).unwrap();
        assert!(m1.centers.approx_eq(&m2.centers, 0.0));
        assert_eq!(m1.inertia, m2.inertia);
    }

    #[test]
    fn f32_compute_fits_comparably() {
        let p = three_blobs(20);
        let m64 = KMeans::new(3).with_seed(4).fit(&p).unwrap();
        let m32 = KMeans::new(3)
            .with_seed(4)
            .with_compute(Compute::F32)
            .fit(&p)
            .unwrap();
        // Same blobs, so the achievable inertia is essentially identical.
        assert!(
            (m32.inertia - m64.inertia).abs() <= 1e-3 * (1.0 + m64.inertia),
            "f32 {} vs f64 {}",
            m32.inertia,
            m64.inertia
        );
        // Deterministic at its own precision.
        let again = KMeans::new(3)
            .with_seed(4)
            .with_compute(Compute::F32)
            .fit(&p)
            .unwrap();
        assert_eq!(m32.inertia, again.inertia);
        assert_eq!(m32.labels, again.labels);
    }

    #[test]
    fn more_restarts_never_worse() {
        let p = three_blobs(20);
        let one = KMeans::new(3).with_n_init(1).with_seed(5).fit(&p).unwrap();
        let many = KMeans::new(3).with_n_init(8).with_seed(5).fit(&p).unwrap();
        assert!(many.inertia <= one.inertia + 1e-12);
        assert_eq!(many.restarts, 8);
    }

    #[test]
    fn weighted_fit_respects_weights() {
        // Two points; the heavy one should dominate the single center.
        let p = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let model = KMeans::new(1)
            .with_seed(3)
            .fit_weighted(&p, &[9.0, 1.0])
            .unwrap();
        assert!((model.centers[(0, 0)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let p = three_blobs(2); // 6 distinct points
        let model = KMeans::new(6).with_seed(11).fit(&p).unwrap();
        assert!(model.inertia < 1e-18, "inertia {}", model.inertia);
    }

    #[test]
    fn predict_and_score() {
        let p = three_blobs(10);
        let model = KMeans::new(3).with_seed(1).fit(&p).unwrap();
        let labels = model.predict(&p).unwrap();
        assert_eq!(labels, model.labels);
        let s = model.score(&p).unwrap();
        assert!((s - model.inertia).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs_error() {
        let p = three_blobs(2);
        assert!(matches!(
            KMeans::new(0).fit(&p),
            Err(ClusteringError::InvalidK { .. })
        ));
        assert!(KMeans::new(7).fit(&p).is_err()); // only 6 points
        assert!(KMeans::new(1).fit(&Matrix::zeros(0, 2)).is_err());
        assert!(KMeans::new(1).fit_weighted(&p, &[1.0]).is_err());
    }

    #[test]
    fn zero_weight_points_do_not_count_toward_k() {
        let p = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let w = [1.0, 0.0, 0.0];
        assert!(KMeans::new(2).fit_weighted(&p, &w).is_err());
        let model = KMeans::new(1).fit_weighted(&p, &w).unwrap();
        assert!((model.centers[(0, 0)]).abs() < 1e-12);
    }

    #[test]
    fn builder_accessors() {
        let km = KMeans::new(4).with_max_iter(7).with_tol(0.5).with_n_init(0);
        assert_eq!(km.k(), 4);
        // n_init clamps to >= 1.
        let p = three_blobs(5);
        assert!(km.fit(&p).is_ok());
    }
}
