//! k-means cost functions and nearest-center assignment.
//!
//! Implements the paper's objective (1) and its weighted coreset variant (4)
//! (the additive Δ shift lives in `ekm-coreset`, which owns the coreset
//! type).

use crate::{ClusteringError, Result};
use ekm_linalg::distance::{Compute, DistanceEngine};
use ekm_linalg::{distance, ops, Matrix};

/// A nearest-center assignment of every point.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Index of the closest center for each point.
    pub labels: Vec<usize>,
    /// Squared distance to that closest center.
    pub distances_sq: Vec<f64>,
}

impl Assignment {
    /// Sum of squared distances (the unweighted k-means cost).
    pub fn total_cost(&self) -> f64 {
        self.distances_sq.iter().sum()
    }

    /// Weighted k-means cost `Σ w_i · d_i²`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the number of points.
    pub fn weighted_cost(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.distances_sq.len(), "weight count");
        self.distances_sq
            .iter()
            .zip(weights)
            .map(|(d, w)| d * w)
            .sum()
    }

    /// Number of points assigned to each of `k` clusters.
    pub fn cluster_sizes(&self, k: usize) -> Vec<usize> {
        let mut sizes = vec![0usize; k];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Total weight assigned to each of `k` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the number of points.
    pub fn cluster_weights(&self, k: usize, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.labels.len(), "weight count");
        let mut totals = vec![0.0f64; k];
        for (&l, &w) in self.labels.iter().zip(weights) {
            totals[l] += w;
        }
        totals
    }
}

/// Assigns every row of `points` to its nearest row of `centers`.
///
/// Runs the blocked norm-expansion kernel
/// ([`ekm_linalg::distance::assign_blocked`]): the labels and distances
/// are written directly into their vectors — no intermediate pair list —
/// and results are bit-identical at every worker count. Ties break
/// toward the lower center index, like [`nearest_center`].
///
/// # Errors
///
/// * [`ClusteringError::EmptyInput`] if either matrix is empty.
/// * [`ClusteringError::Linalg`] on dimension mismatch.
pub fn assign(points: &Matrix, centers: &Matrix) -> Result<Assignment> {
    if points.is_empty() || centers.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    if points.cols() != centers.cols() {
        return Err(ClusteringError::Linalg(
            ekm_linalg::LinalgError::DimensionMismatch {
                op: "assign",
                lhs: points.shape(),
                rhs: centers.shape(),
            },
        ));
    }
    let (labels, distances_sq) =
        distance::assign_blocked(points, centers).map_err(ClusteringError::Linalg)?;
    Ok(Assignment {
        labels,
        distances_sq,
    })
}

/// [`assign`] with an explicit compute precision.
///
/// `Compute::F64` is bit-identical to [`assign`]. `Compute::F32` runs the
/// distance kernel in single precision (distances widened back to `f64`);
/// labels may differ near exact ties. Repeated assignments against the same
/// points should build one [`DistanceEngine`] and call [`assign_engine`].
///
/// # Errors
///
/// See [`assign`].
pub fn assign_with(points: &Matrix, centers: &Matrix, compute: Compute) -> Result<Assignment> {
    match compute {
        Compute::F64 => assign(points, centers),
        Compute::F32 => assign_engine(&DistanceEngine::new(points, compute), centers),
    }
}

/// Assigns the engine's points to their nearest rows of `centers`, in the
/// engine's compute precision. This is the iteration-friendly form of
/// [`assign_with`]: the point norms (and the f32 mirror of the points, if
/// any) are paid once at engine construction instead of per call.
///
/// # Errors
///
/// * [`ClusteringError::EmptyInput`] if either matrix is empty.
/// * [`ClusteringError::Linalg`] on dimension mismatch.
pub fn assign_engine(engine: &DistanceEngine<'_>, centers: &Matrix) -> Result<Assignment> {
    if engine.points().is_empty() || centers.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    if engine.points().cols() != centers.cols() {
        return Err(ClusteringError::Linalg(
            ekm_linalg::LinalgError::DimensionMismatch {
                op: "assign",
                lhs: engine.points().shape(),
                rhs: centers.shape(),
            },
        ));
    }
    let (labels, distances_sq) = engine.assign(centers).map_err(ClusteringError::Linalg)?;
    Ok(Assignment {
        labels,
        distances_sq,
    })
}

/// Returns `(index, squared distance)` of the center nearest to `point`
/// — the scalar reference path (one point, subtract-square distances).
/// Batch call sites go through [`assign`]'s blocked kernel instead.
///
/// # Panics
///
/// Panics if `centers` is empty (callers validate first).
pub fn nearest_center(point: &[f64], centers: &Matrix) -> (usize, f64) {
    assert!(centers.rows() > 0, "nearest_center: no centers");
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (j, c) in centers.iter_rows().enumerate() {
        let d = ops::sq_dist(point, c);
        if d < best_d {
            best_d = d;
            best = j;
        }
    }
    (best, best_d)
}

/// Unweighted k-means cost `cost(P, X)` — the paper's eq. (1).
///
/// # Errors
///
/// Propagates errors from [`assign`].
pub fn cost(points: &Matrix, centers: &Matrix) -> Result<f64> {
    Ok(assign(points, centers)?.total_cost())
}

/// Weighted k-means cost `Σ_q w(q) · min_x ‖q − x‖²` — eq. (4) without Δ.
///
/// # Errors
///
/// * Propagates errors from [`assign`].
/// * [`ClusteringError::InvalidWeights`] on length mismatch.
pub fn weighted_cost(points: &Matrix, weights: &[f64], centers: &Matrix) -> Result<f64> {
    if weights.len() != points.rows() {
        return Err(ClusteringError::InvalidWeights {
            reason: "length differs from point count",
        });
    }
    Ok(assign(points, centers)?.weighted_cost(weights))
}

/// [`weighted_cost`] with an explicit compute precision.
///
/// # Errors
///
/// See [`weighted_cost`].
pub fn weighted_cost_with(
    points: &Matrix,
    weights: &[f64],
    centers: &Matrix,
    compute: Compute,
) -> Result<f64> {
    if weights.len() != points.rows() {
        return Err(ClusteringError::InvalidWeights {
            reason: "length differs from point count",
        });
    }
    Ok(assign_with(points, centers, compute)?.weighted_cost(weights))
}

/// Squared distance from every point to its nearest center (the D² vector
/// driving k-means++ and adaptive sampling).
///
/// # Errors
///
/// Propagates errors from [`assign`].
pub fn min_sq_dists(points: &Matrix, centers: &Matrix) -> Result<Vec<f64>> {
    Ok(assign(points, centers)?.distances_sq)
}

/// Validates a weight vector: right length, finite, nonnegative, not all
/// zero.
///
/// # Errors
///
/// Returns [`ClusteringError::InvalidWeights`] describing the first problem
/// found.
pub fn validate_weights(weights: &[f64], n: usize) -> Result<()> {
    if weights.len() != n {
        return Err(ClusteringError::InvalidWeights {
            reason: "length differs from point count",
        });
    }
    if weights.iter().any(|w| !w.is_finite()) {
        return Err(ClusteringError::InvalidWeights {
            reason: "non-finite weight",
        });
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(ClusteringError::InvalidWeights {
            reason: "negative weight",
        });
    }
    if weights.iter().all(|&w| w == 0.0) {
        return Err(ClusteringError::InvalidWeights {
            reason: "all weights are zero",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> (Matrix, Matrix) {
        let points = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![10.0, 0.0],
            vec![11.0, 0.0],
        ]);
        let centers = Matrix::from_rows(&[vec![0.5, 0.0], vec![10.5, 0.0]]);
        (points, centers)
    }

    #[test]
    fn assign_labels_and_distances() {
        let (p, c) = simple();
        let a = assign(&p, &c).unwrap();
        assert_eq!(a.labels, vec![0, 0, 1, 1]);
        for &d in &a.distances_sq {
            assert!((d - 0.25).abs() < 1e-12);
        }
        assert!((a.total_cost() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_cost_scales() {
        let (p, c) = simple();
        let w = vec![2.0, 2.0, 2.0, 2.0];
        assert!((weighted_cost(&p, &w, &c).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cost_zero_when_centers_equal_points() {
        let p = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(cost(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn min_sq_dists_matches_assignment() {
        let (p, c) = simple();
        let d = min_sq_dists(&p, &c).unwrap();
        assert_eq!(d, assign(&p, &c).unwrap().distances_sq);
    }

    #[test]
    fn cluster_sizes_and_weights() {
        let (p, c) = simple();
        let a = assign(&p, &c).unwrap();
        assert_eq!(a.cluster_sizes(2), vec![2, 2]);
        let w = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.cluster_weights(2, &w), vec![3.0, 7.0]);
    }

    #[test]
    fn empty_inputs_error() {
        let p = Matrix::zeros(0, 2);
        let c = Matrix::from_rows(&[vec![0.0, 0.0]]);
        assert!(matches!(assign(&p, &c), Err(ClusteringError::EmptyInput)));
        assert!(matches!(assign(&c, &p), Err(ClusteringError::EmptyInput)));
    }

    #[test]
    fn dimension_mismatch_errors() {
        let p = Matrix::zeros(2, 3);
        let c = Matrix::zeros(1, 2);
        assert!(matches!(assign(&p, &c), Err(ClusteringError::Linalg(_))));
    }

    #[test]
    fn validate_weights_cases() {
        assert!(validate_weights(&[1.0, 2.0], 2).is_ok());
        assert!(validate_weights(&[1.0], 2).is_err());
        assert!(validate_weights(&[1.0, -1.0], 2).is_err());
        assert!(validate_weights(&[1.0, f64::NAN], 2).is_err());
        assert!(validate_weights(&[0.0, 0.0], 2).is_err());
    }

    #[test]
    fn nearest_center_tie_breaks_to_first() {
        let c = Matrix::from_rows(&[vec![1.0], vec![-1.0]]);
        let (l, d) = nearest_center(&[0.0], &c);
        assert_eq!(l, 0);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assign_with_f64_is_bitwise_assign() {
        let (p, c) = simple();
        let a = assign(&p, &c).unwrap();
        let b = assign_with(&p, &c, Compute::F64).unwrap();
        assert_eq!(a, b);
        let engine = DistanceEngine::new(&p, Compute::F64);
        assert_eq!(a, assign_engine(&engine, &c).unwrap());
    }

    #[test]
    fn assign_with_f32_close_to_f64() {
        let (p, c) = simple();
        let a64 = assign(&p, &c).unwrap();
        let a32 = assign_with(&p, &c, Compute::F32).unwrap();
        assert_eq!(a64.labels, a32.labels);
        for (x, y) in a64.distances_sq.iter().zip(&a32.distances_sq) {
            assert!((x - y).abs() <= 1e-5 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn assign_engine_rejects_bad_inputs() {
        let (p, c) = simple();
        let engine = DistanceEngine::new(&p, Compute::F32);
        assert!(matches!(
            assign_engine(&engine, &Matrix::zeros(0, 2)),
            Err(ClusteringError::EmptyInput)
        ));
        assert!(matches!(
            assign_engine(&engine, &Matrix::zeros(1, 3)),
            Err(ClusteringError::Linalg(_))
        ));
        assert!((weighted_cost_with(&p, &[1.0; 4], &c, Compute::F32).unwrap() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn blocked_assignment_matches_scalar_reference() {
        // Large enough to cross the blocked kernel's parallel threshold.
        // Integer-valued data keeps both distance forms exact, so the
        // blocked kernel must agree with the scalar path bit for bit.
        let n = 5000;
        let p = Matrix::from_fn(n, 3, |i, j| ((i * 31 + j * 17) % 101) as f64);
        let c = Matrix::from_fn(5, 3, |i, j| ((i * 13 + j * 7) % 23) as f64);
        let a = assign(&p, &c).unwrap();
        for i in (0..n).step_by(997) {
            let (l, d) = nearest_center(p.row(i), &c);
            assert_eq!(a.labels[i], l);
            assert_eq!(a.distances_sq[i], d);
        }
    }
}
