//! Bicriteria k-means approximation by adaptive (D²) sampling.
//!
//! Implements the Aggarwal–Deshpande–Kannan scheme (paper references \[36\],
//! \[42\]): in each round, a batch of points is drawn from the current D²
//! distribution and added to the center set. With `O(k)` points per round
//! and a constant number of rounds, the selected set is an O(1)-approximate
//! solution using more than `k` centers — which is what sensitivity
//! sampling (disSS step 1) and the §6.3.1 lower bound need.

use crate::cost::{assign_engine, validate_weights};
use crate::init::d2_sample_batch_from;
use crate::{ClusteringError, Result};
use ekm_linalg::distance::{Compute, DistanceEngine};
use ekm_linalg::random::{derive_seed, rng_from_seed};
use ekm_linalg::Matrix;

/// Configuration for [`bicriteria`].
#[derive(Debug, Clone)]
pub struct BicriteriaConfig {
    /// Points sampled per adaptive round, as a multiple of `k` (default 3).
    pub per_round_factor: usize,
    /// Number of adaptive rounds (default 5).
    pub rounds: usize,
    /// Independent trials; the lowest-cost solution wins (default 1 —
    /// the §6.3.1 estimator uses `⌈log(1/δ)⌉`).
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Scalar precision of the D² maintenance and final cost (default
    /// [`Compute::F64`], the bit-reproducibility reference).
    pub compute: Compute,
}

impl Default for BicriteriaConfig {
    fn default() -> Self {
        BicriteriaConfig {
            per_round_factor: 3,
            rounds: 5,
            trials: 1,
            seed: 0,
            compute: Compute::F64,
        }
    }
}

/// A bicriteria solution: more than `k` centers whose cost is within a
/// constant factor of the optimal `k`-means cost.
#[derive(Debug, Clone)]
pub struct BicriteriaSolution {
    /// Selected centers (`O(k · rounds) × d`), actual rows of the input.
    pub centers: Matrix,
    /// Row indices of the selected centers in the input dataset.
    pub indices: Vec<usize>,
    /// Weighted k-means cost of the input against `centers`.
    pub cost: f64,
}

/// Computes a bicriteria approximation of weighted k-means via adaptive
/// sampling.
///
/// # Errors
///
/// * [`ClusteringError::EmptyInput`] for an empty dataset.
/// * [`ClusteringError::InvalidK`] if `k == 0`.
/// * [`ClusteringError::InvalidWeights`] for malformed weights.
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
/// use ekm_clustering::bicriteria::{bicriteria, BicriteriaConfig};
///
/// let p = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![5.0], vec![5.1]]);
/// let w = vec![1.0; 4];
/// let sol = bicriteria(&p, &w, 2, &BicriteriaConfig::default()).unwrap();
/// assert!(sol.cost <= 0.02); // enough centers to nail both blobs
/// ```
pub fn bicriteria(
    points: &Matrix,
    weights: &[f64],
    k: usize,
    config: &BicriteriaConfig,
) -> Result<BicriteriaSolution> {
    if points.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    validate_weights(weights, points.rows())?;
    if k == 0 {
        return Err(ClusteringError::InvalidK {
            k,
            n: points.rows(),
        });
    }
    let per_round = (config.per_round_factor.max(1) * k).min(points.rows());
    let trials = config.trials.max(1);

    // One engine across all trials and rounds: point norms are paid once,
    // and each round's D² refresh is a batched min-update against just the
    // newly drawn rows — no full reassignment per round. Because the
    // per-candidate distance values are identical and a min-fold is
    // order-independent, the maintained D² (and hence the RNG stream) is
    // bit-identical to recomputing a fresh assignment each round.
    let engine = DistanceEngine::new(points, config.compute);
    let mut best: Option<BicriteriaSolution> = None;
    for trial in 0..trials {
        let mut rng = rng_from_seed(derive_seed(config.seed, trial as u64));
        let mut indices: Vec<usize> = Vec::new();
        let mut d2 = vec![f64::INFINITY; points.rows()];
        for round in 0..config.rounds.max(1) {
            let current = if round == 0 {
                None
            } else {
                Some(d2.as_slice())
            };
            let batch = d2_sample_batch_from(&mut rng, weights, current, per_round)?;
            engine
                .min_update(&points.select_rows(&batch), &mut d2)
                .map_err(ClusteringError::Linalg)?;
            indices.extend(batch);
        }
        indices.sort_unstable();
        indices.dedup();
        let centers = points.select_rows(&indices);
        let cost = assign_engine(&engine, &centers)?.weighted_cost(weights);
        let better = best.as_ref().map(|b| cost < b.cost).unwrap_or(true);
        if better {
            best = Some(BicriteriaSolution {
                centers,
                indices,
                cost,
            });
        }
    }
    Ok(best.expect("trials >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeans;

    fn blobs(per: usize, centers: &[(f64, f64)]) -> Matrix {
        let mut rows = Vec::new();
        for &(cx, cy) in centers {
            for i in 0..per {
                let j = (i % 9) as f64 * 0.02;
                rows.push(vec![cx + j, cy - j]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn cost_within_constant_of_kmeans() {
        let p = blobs(40, &[(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)]);
        let w = vec![1.0; p.rows()];
        let sol = bicriteria(&p, &w, 3, &BicriteriaConfig::default()).unwrap();
        let opt = KMeans::new(3).with_seed(3).fit(&p).unwrap().inertia;
        // The theory gives O(1); in practice adaptive sampling with 3
        // rounds × 3k points is well within 20× of optimal.
        assert!(
            sol.cost <= 20.0 * opt.max(1e-9) + 1e-9,
            "bicriteria cost {} vs opt {opt}",
            sol.cost
        );
    }

    #[test]
    fn selects_input_rows() {
        let p = blobs(10, &[(0.0, 0.0), (5.0, 5.0)]);
        let w = vec![1.0; p.rows()];
        let sol = bicriteria(&p, &w, 2, &BicriteriaConfig::default()).unwrap();
        for (pos, &i) in sol.indices.iter().enumerate() {
            assert_eq!(sol.centers.row(pos), p.row(i));
        }
    }

    #[test]
    fn incremental_d2_preserves_the_sampling_stream() {
        // The incremental min-update formulation must consume the RNG
        // exactly like the original "fresh assignment per round" one:
        // same probabilities, same draws, same selected indices.
        let p = blobs(12, &[(0.0, 0.0), (8.0, 8.0), (-5.0, 3.0)]);
        let w = vec![1.0; p.rows()];
        let cfg = BicriteriaConfig {
            seed: 21,
            ..BicriteriaConfig::default()
        };
        let sol = bicriteria(&p, &w, 2, &cfg).unwrap();

        let per_round = (cfg.per_round_factor * 2).min(p.rows());
        let mut rng = rng_from_seed(derive_seed(cfg.seed, 0));
        let mut indices: Vec<usize> = Vec::new();
        let mut centers = Matrix::zeros(0, 0);
        for round in 0..cfg.rounds {
            let current = if round == 0 { None } else { Some(&centers) };
            let batch = crate::init::d2_sample_batch(&mut rng, &p, &w, current, per_round).unwrap();
            indices.extend(batch);
            indices.sort_unstable();
            indices.dedup();
            centers = p.select_rows(&indices);
        }
        assert_eq!(sol.indices, indices);
        let reference = crate::cost::assign(&p, &centers).unwrap().weighted_cost(&w);
        assert_eq!(sol.cost, reference);
    }

    #[test]
    fn f32_compute_stays_within_constant_factor() {
        let p = blobs(30, &[(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)]);
        let w = vec![1.0; p.rows()];
        let cfg = BicriteriaConfig {
            compute: Compute::F32,
            seed: 2,
            ..BicriteriaConfig::default()
        };
        let sol = bicriteria(&p, &w, 3, &cfg).unwrap();
        let opt = KMeans::new(3).with_seed(3).fit(&p).unwrap().inertia;
        assert!(
            sol.cost <= 20.0 * opt.max(1e-9) + 1e-9,
            "f32 bicriteria cost {} vs opt {opt}",
            sol.cost
        );
        let again = bicriteria(&p, &w, 3, &cfg).unwrap();
        assert_eq!(sol.indices, again.indices);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = blobs(15, &[(0.0, 0.0), (9.0, 9.0)]);
        let w = vec![1.0; p.rows()];
        let cfg = BicriteriaConfig {
            seed: 77,
            ..BicriteriaConfig::default()
        };
        let a = bicriteria(&p, &w, 2, &cfg).unwrap();
        let b = bicriteria(&p, &w, 2, &cfg).unwrap();
        assert_eq!(a.indices, b.indices);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn more_trials_never_worse() {
        let p = blobs(20, &[(0.0, 0.0), (30.0, 0.0), (0.0, 30.0), (30.0, 30.0)]);
        let w = vec![1.0; p.rows()];
        let one = bicriteria(
            &p,
            &w,
            4,
            &BicriteriaConfig {
                trials: 1,
                seed: 5,
                ..BicriteriaConfig::default()
            },
        )
        .unwrap();
        let five = bicriteria(
            &p,
            &w,
            4,
            &BicriteriaConfig {
                trials: 5,
                seed: 5,
                ..BicriteriaConfig::default()
            },
        )
        .unwrap();
        assert!(five.cost <= one.cost + 1e-12);
    }

    #[test]
    fn handles_small_datasets() {
        let p = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let w = vec![1.0, 1.0];
        let sol = bicriteria(&p, &w, 5, &BicriteriaConfig::default()).unwrap();
        assert!(sol.centers.rows() <= 2);
        assert!(sol.cost <= 0.5);
    }

    #[test]
    fn invalid_inputs_error() {
        let p = Matrix::from_rows(&[vec![1.0]]);
        assert!(bicriteria(&Matrix::zeros(0, 1), &[], 1, &BicriteriaConfig::default()).is_err());
        assert!(bicriteria(&p, &[1.0], 0, &BicriteriaConfig::default()).is_err());
        assert!(bicriteria(&p, &[-1.0], 1, &BicriteriaConfig::default()).is_err());
    }

    #[test]
    fn weighted_sampling_prefers_heavy_regions() {
        // Heavy far blob must get a center despite having few points.
        let mut rows = vec![vec![0.0]; 50];
        rows.push(vec![1000.0]);
        let p = Matrix::from_rows(&rows);
        let mut w = vec![1.0; 51];
        w[50] = 1000.0;
        let sol = bicriteria(&p, &w, 2, &BicriteriaConfig::default()).unwrap();
        assert!(
            sol.indices.contains(&50),
            "heavy outlier not selected: {:?}",
            sol.indices
        );
    }
}
