//! k-means++ (D²) seeding, weighted.
//!
//! The D² distribution — pick the next center with probability proportional
//! to (weight ×) squared distance to the current centers — is used three
//! ways in the paper's stack: as Lloyd seeding, as the inner loop of the
//! ADK bicriteria approximation, and (via sensitivities) in coreset
//! sampling.

use crate::cost::validate_weights;
use crate::{ClusteringError, Result};
use ekm_linalg::{distance, Matrix};
use rand::Rng;

/// Selects `k` initial center indices by weighted k-means++.
///
/// The first center is drawn with probability proportional to the weights;
/// each subsequent center with probability proportional to
/// `w(p) · D²(p)` where `D(p)` is the distance to the nearest center chosen
/// so far. Zero-weight points are never selected.
///
/// # Errors
///
/// * [`ClusteringError::EmptyInput`] for an empty dataset.
/// * [`ClusteringError::InvalidK`] if `k` is 0 or exceeds the number of
///   positive-weight points.
/// * [`ClusteringError::InvalidWeights`] for malformed weights.
pub fn kmeanspp_indices<R: Rng + ?Sized>(
    rng: &mut R,
    points: &Matrix,
    weights: &[f64],
    k: usize,
) -> Result<Vec<usize>> {
    if points.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    let n = points.rows();
    validate_weights(weights, n)?;
    let positive = weights.iter().filter(|&&w| w > 0.0).count();
    if k == 0 || k > positive {
        return Err(ClusteringError::InvalidK { k, n: positive });
    }

    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    // First center: ∝ w.
    chosen.push(draw_index(rng, weights)?);

    // Maintain D² to the chosen set incrementally via the blocked
    // norm-expansion kernel: the point norms are paid once, and every
    // round's refresh against the new center is pure dot products.
    let norms = distance::row_norms_sq(points);
    let mut d2 = distance::sq_dists_to_row(points, &norms, points.row(chosen[0]));

    while chosen.len() < k {
        let probs: Vec<f64> = d2.iter().zip(weights).map(|(&d, &w)| d * w).collect();
        let total: f64 = probs.iter().sum();
        let next = if total > 0.0 {
            draw_index(rng, &probs)?
        } else {
            // All remaining mass at distance zero (duplicate-heavy data):
            // fall back to weight-proportional sampling among unchosen
            // positive-weight points.
            let mut fallback = weights.to_vec();
            for &c in &chosen {
                fallback[c] = 0.0;
            }
            if fallback.iter().all(|&w| w == 0.0) {
                return Err(ClusteringError::InvalidK { k, n: chosen.len() });
            }
            draw_index(rng, &fallback)?
        };
        chosen.push(next);
        let nd = distance::sq_dists_to_row(points, &norms, points.row(next));
        for (d, nd) in d2.iter_mut().zip(nd) {
            if nd < *d {
                *d = nd;
            }
        }
    }
    Ok(chosen)
}

/// Selects `k` initial centers (as a matrix of rows) by weighted k-means++.
///
/// # Errors
///
/// See [`kmeanspp_indices`].
pub fn kmeanspp_centers<R: Rng + ?Sized>(
    rng: &mut R,
    points: &Matrix,
    weights: &[f64],
    k: usize,
) -> Result<Matrix> {
    let idx = kmeanspp_indices(rng, points, weights, k)?;
    Ok(points.select_rows(&idx))
}

/// Draws a batch of `count` indices i.i.d. from the current D² distribution
/// with respect to `centers` (one adaptive-sampling round of ADK).
///
/// When `centers` is empty the draw is weight-proportional (the "first
/// round" of adaptive sampling).
///
/// # Errors
///
/// * [`ClusteringError::EmptyInput`] for an empty dataset.
/// * [`ClusteringError::InvalidWeights`] for malformed weights.
pub fn d2_sample_batch<R: Rng + ?Sized>(
    rng: &mut R,
    points: &Matrix,
    weights: &[f64],
    centers: Option<&Matrix>,
    count: usize,
) -> Result<Vec<usize>> {
    if points.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    validate_weights(weights, points.rows())?;
    let probs: Vec<f64> = match centers {
        Some(c) if !c.is_empty() => {
            let (_, d2) = distance::assign_blocked(points, c).map_err(ClusteringError::Linalg)?;
            d2.iter().zip(weights).map(|(&d, &w)| d * w).collect()
        }
        _ => weights.to_vec(),
    };
    let total: f64 = probs.iter().sum();
    let effective = if total > 0.0 { probs } else { weights.to_vec() };
    (0..count).map(|_| draw_index(rng, &effective)).collect()
}

/// Draws one index with probability proportional to `probs` (nonnegative,
/// not all zero).
fn draw_index<R: Rng + ?Sized>(rng: &mut R, probs: &[f64]) -> Result<usize> {
    let total: f64 = probs.iter().sum();
    if total.is_nan() || total <= 0.0 || total.is_infinite() {
        return Err(ClusteringError::InvalidWeights {
            reason: "sampling distribution has no mass",
        });
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &p) in probs.iter().enumerate() {
        target -= p;
        if target <= 0.0 && p > 0.0 {
            return Ok(i);
        }
    }
    // Floating-point slack: return the last positive-probability index.
    Ok(probs
        .iter()
        .rposition(|&p| p > 0.0)
        .expect("total > 0 implies a positive entry"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_linalg::random::rng_from_seed;

    fn two_blob_points() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push(vec![0.0 + (i % 5) as f64 * 0.01, 0.0]);
        }
        for i in 0..50 {
            rows.push(vec![100.0 + (i % 5) as f64 * 0.01, 0.0]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn kmeanspp_selects_k_distinct_indices() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        let mut rng = rng_from_seed(1);
        let idx = kmeanspp_indices(&mut rng, &p, &w, 2).unwrap();
        assert_eq!(idx.len(), 2);
        assert_ne!(idx[0], idx[1]);
    }

    #[test]
    fn kmeanspp_spreads_across_blobs() {
        // With two far blobs, the two seeds should land in different blobs
        // essentially always.
        let p = two_blob_points();
        let w = vec![1.0; 100];
        for seed in 0..20 {
            let mut rng = rng_from_seed(seed);
            let idx = kmeanspp_indices(&mut rng, &p, &w, 2).unwrap();
            let blob = |i: usize| usize::from(i >= 50);
            assert_ne!(blob(idx[0]), blob(idx[1]), "seed {seed}");
        }
    }

    #[test]
    fn zero_weight_points_never_selected() {
        let p = two_blob_points();
        let mut w = vec![0.0; 100];
        for wv in w.iter_mut().take(10) {
            *wv = 1.0;
        }
        let mut rng = rng_from_seed(3);
        let idx = kmeanspp_indices(&mut rng, &p, &w, 3).unwrap();
        assert!(idx.iter().all(|&i| i < 10));
    }

    #[test]
    fn invalid_k_errors() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        let mut rng = rng_from_seed(4);
        assert!(matches!(
            kmeanspp_indices(&mut rng, &p, &w, 0),
            Err(ClusteringError::InvalidK { .. })
        ));
        assert!(kmeanspp_indices(&mut rng, &p, &w, 101).is_err());
    }

    #[test]
    fn duplicate_points_fall_back_gracefully() {
        // 5 identical points, k=3: D² mass collapses to zero after the
        // first pick; fallback must still produce 3 picks.
        let p = Matrix::from_rows(&vec![vec![1.0]; 5]);
        let w = vec![1.0; 5];
        let mut rng = rng_from_seed(5);
        let idx = kmeanspp_indices(&mut rng, &p, &w, 3).unwrap();
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn kmeanspp_centers_shape() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        let mut rng = rng_from_seed(6);
        let c = kmeanspp_centers(&mut rng, &p, &w, 4).unwrap();
        assert_eq!(c.shape(), (4, 2));
    }

    #[test]
    fn d2_batch_first_round_is_weight_proportional() {
        let p = two_blob_points();
        let mut w = vec![0.0; 100];
        w[7] = 1.0;
        let mut rng = rng_from_seed(7);
        let batch = d2_sample_batch(&mut rng, &p, &w, None, 20).unwrap();
        assert!(batch.iter().all(|&i| i == 7));
    }

    #[test]
    fn d2_batch_avoids_points_at_existing_centers() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        // Center sitting exactly on blob 1 => all mass on blob 2.
        let c = Matrix::from_rows(&[vec![0.02, 0.0]]);
        let mut rng = rng_from_seed(8);
        let batch = d2_sample_batch(&mut rng, &p, &w, Some(&c), 50).unwrap();
        let far = batch.iter().filter(|&&i| i >= 50).count();
        assert!(far >= 49, "only {far}/50 samples in far blob");
    }

    #[test]
    fn draw_index_respects_distribution() {
        let mut rng = rng_from_seed(9);
        let probs = [0.0, 0.25, 0.75];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[draw_index(&mut rng, &probs).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let frac = counts[2] as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn draw_index_no_mass_errors() {
        let mut rng = rng_from_seed(10);
        assert!(draw_index(&mut rng, &[0.0, 0.0]).is_err());
    }
}
