//! k-means++ (D²) seeding, weighted.
//!
//! The D² distribution — pick the next center with probability proportional
//! to (weight ×) squared distance to the current centers — is used three
//! ways in the paper's stack: as Lloyd seeding, as the inner loop of the
//! ADK bicriteria approximation, and (via sensitivities) in coreset
//! sampling.

use crate::cost::validate_weights;
use crate::{ClusteringError, Result};
use ekm_linalg::distance::{Compute, DistanceEngine};
use ekm_linalg::{distance, Matrix};
use rand::Rng;

/// Selects `k` initial center indices by weighted k-means++.
///
/// The first center is drawn with probability proportional to the weights;
/// each subsequent center with probability proportional to
/// `w(p) · D²(p)` where `D(p)` is the distance to the nearest center chosen
/// so far. Zero-weight points are never selected.
///
/// # Errors
///
/// * [`ClusteringError::EmptyInput`] for an empty dataset.
/// * [`ClusteringError::InvalidK`] if `k` is 0 or exceeds the number of
///   positive-weight points.
/// * [`ClusteringError::InvalidWeights`] for malformed weights.
pub fn kmeanspp_indices<R: Rng + ?Sized>(
    rng: &mut R,
    points: &Matrix,
    weights: &[f64],
    k: usize,
) -> Result<Vec<usize>> {
    kmeanspp_indices_with(rng, points, weights, k, Compute::F64)
}

/// [`kmeanspp_indices`] with an explicit compute precision.
///
/// `Compute::F64` reproduces [`kmeanspp_indices`] bit for bit (including
/// the RNG stream). `Compute::F32` runs the D² refresh in single
/// precision; the selected indices may differ from the f64 path, but the
/// procedure is still deterministic for a fixed seed.
///
/// # Errors
///
/// See [`kmeanspp_indices`].
pub fn kmeanspp_indices_with<R: Rng + ?Sized>(
    rng: &mut R,
    points: &Matrix,
    weights: &[f64],
    k: usize,
    compute: Compute,
) -> Result<Vec<usize>> {
    if points.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    let n = points.rows();
    validate_weights(weights, n)?;
    let positive = weights.iter().filter(|&&w| w > 0.0).count();
    if k == 0 || k > positive {
        return Err(ClusteringError::InvalidK { k, n: positive });
    }

    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    // First center: ∝ w.
    chosen.push(draw_index(rng, weights)?);

    // Maintain D² to the chosen set incrementally through the engine's
    // batched min-update: the point norms are paid once when the engine
    // is built, and every round's refresh against the new center runs the
    // blocked lane kernel instead of a serial per-point loop. Starting
    // from +∞ and min-updating with the first center yields exactly the
    // distances-to-first-center vector.
    let engine = DistanceEngine::new(points, compute);
    let mut d2 = vec![f64::INFINITY; n];
    engine
        .min_update(&points.select_rows(&[chosen[0]]), &mut d2)
        .map_err(ClusteringError::Linalg)?;

    while chosen.len() < k {
        let probs: Vec<f64> = d2.iter().zip(weights).map(|(&d, &w)| d * w).collect();
        let total: f64 = probs.iter().sum();
        let next = if total > 0.0 {
            draw_index(rng, &probs)?
        } else {
            // All remaining mass at distance zero (duplicate-heavy data):
            // fall back to weight-proportional sampling among unchosen
            // positive-weight points.
            let mut fallback = weights.to_vec();
            for &c in &chosen {
                fallback[c] = 0.0;
            }
            if fallback.iter().all(|&w| w == 0.0) {
                return Err(ClusteringError::InvalidK { k, n: chosen.len() });
            }
            draw_index(rng, &fallback)?
        };
        chosen.push(next);
        engine
            .min_update(&points.select_rows(&[next]), &mut d2)
            .map_err(ClusteringError::Linalg)?;
    }
    Ok(chosen)
}

/// Selects `k` initial centers (as a matrix of rows) by weighted k-means++.
///
/// # Errors
///
/// See [`kmeanspp_indices`].
pub fn kmeanspp_centers<R: Rng + ?Sized>(
    rng: &mut R,
    points: &Matrix,
    weights: &[f64],
    k: usize,
) -> Result<Matrix> {
    kmeanspp_centers_with(rng, points, weights, k, Compute::F64)
}

/// [`kmeanspp_centers`] with an explicit compute precision.
///
/// # Errors
///
/// See [`kmeanspp_indices`].
pub fn kmeanspp_centers_with<R: Rng + ?Sized>(
    rng: &mut R,
    points: &Matrix,
    weights: &[f64],
    k: usize,
    compute: Compute,
) -> Result<Matrix> {
    let idx = kmeanspp_indices_with(rng, points, weights, k, compute)?;
    Ok(points.select_rows(&idx))
}

/// Draws a batch of `count` indices i.i.d. from the current D² distribution
/// with respect to `centers` (one adaptive-sampling round of ADK).
///
/// When `centers` is empty the draw is weight-proportional (the "first
/// round" of adaptive sampling).
///
/// # Errors
///
/// * [`ClusteringError::EmptyInput`] for an empty dataset.
/// * [`ClusteringError::InvalidWeights`] for malformed weights.
pub fn d2_sample_batch<R: Rng + ?Sized>(
    rng: &mut R,
    points: &Matrix,
    weights: &[f64],
    centers: Option<&Matrix>,
    count: usize,
) -> Result<Vec<usize>> {
    if points.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    validate_weights(weights, points.rows())?;
    let d2 = match centers {
        Some(c) if !c.is_empty() => {
            let (_, d2) = distance::assign_blocked(points, c).map_err(ClusteringError::Linalg)?;
            Some(d2)
        }
        _ => None,
    };
    d2_sample_batch_from(rng, weights, d2.as_deref(), count)
}

/// Draws a batch of `count` indices i.i.d. from the D² distribution induced
/// by an externally maintained squared-distance vector.
///
/// This is the sampling tail of [`d2_sample_batch`] (which delegates here),
/// split out so callers that keep `D²` incrementally up to date — the
/// adaptive rounds of `bicriteria` — can draw without recomputing a full
/// assignment. `d2 = None` means "no centers yet": the draw is
/// weight-proportional. When the total `w · D²` mass vanishes (every point
/// sits on a center), sampling falls back to the raw weights.
///
/// # Errors
///
/// * [`ClusteringError::InvalidWeights`] for malformed weights.
///
/// # Panics
///
/// Panics if `d2` is `Some` with a length different from `weights`.
pub fn d2_sample_batch_from<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    d2: Option<&[f64]>,
    count: usize,
) -> Result<Vec<usize>> {
    validate_weights(weights, weights.len())?;
    let probs: Vec<f64> = match d2 {
        Some(d2) => {
            assert_eq!(d2.len(), weights.len(), "d2 length");
            d2.iter().zip(weights).map(|(&d, &w)| d * w).collect()
        }
        None => weights.to_vec(),
    };
    let total: f64 = probs.iter().sum();
    let effective = if total > 0.0 { probs } else { weights.to_vec() };
    (0..count).map(|_| draw_index(rng, &effective)).collect()
}

/// Draws one index with probability proportional to `probs` (nonnegative,
/// not all zero).
fn draw_index<R: Rng + ?Sized>(rng: &mut R, probs: &[f64]) -> Result<usize> {
    let total: f64 = probs.iter().sum();
    if total.is_nan() || total <= 0.0 || total.is_infinite() {
        return Err(ClusteringError::InvalidWeights {
            reason: "sampling distribution has no mass",
        });
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &p) in probs.iter().enumerate() {
        target -= p;
        if target <= 0.0 && p > 0.0 {
            return Ok(i);
        }
    }
    // Floating-point slack: return the last positive-probability index.
    Ok(probs
        .iter()
        .rposition(|&p| p > 0.0)
        .expect("total > 0 implies a positive entry"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_linalg::random::rng_from_seed;

    fn two_blob_points() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push(vec![0.0 + (i % 5) as f64 * 0.01, 0.0]);
        }
        for i in 0..50 {
            rows.push(vec![100.0 + (i % 5) as f64 * 0.01, 0.0]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn kmeanspp_selects_k_distinct_indices() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        let mut rng = rng_from_seed(1);
        let idx = kmeanspp_indices(&mut rng, &p, &w, 2).unwrap();
        assert_eq!(idx.len(), 2);
        assert_ne!(idx[0], idx[1]);
    }

    #[test]
    fn kmeanspp_spreads_across_blobs() {
        // With two far blobs, the two seeds should land in different blobs
        // essentially always.
        let p = two_blob_points();
        let w = vec![1.0; 100];
        for seed in 0..20 {
            let mut rng = rng_from_seed(seed);
            let idx = kmeanspp_indices(&mut rng, &p, &w, 2).unwrap();
            let blob = |i: usize| usize::from(i >= 50);
            assert_ne!(blob(idx[0]), blob(idx[1]), "seed {seed}");
        }
    }

    #[test]
    fn zero_weight_points_never_selected() {
        let p = two_blob_points();
        let mut w = vec![0.0; 100];
        for wv in w.iter_mut().take(10) {
            *wv = 1.0;
        }
        let mut rng = rng_from_seed(3);
        let idx = kmeanspp_indices(&mut rng, &p, &w, 3).unwrap();
        assert!(idx.iter().all(|&i| i < 10));
    }

    #[test]
    fn invalid_k_errors() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        let mut rng = rng_from_seed(4);
        assert!(matches!(
            kmeanspp_indices(&mut rng, &p, &w, 0),
            Err(ClusteringError::InvalidK { .. })
        ));
        assert!(kmeanspp_indices(&mut rng, &p, &w, 101).is_err());
    }

    #[test]
    fn duplicate_points_fall_back_gracefully() {
        // 5 identical points, k=3: D² mass collapses to zero after the
        // first pick; fallback must still produce 3 picks.
        let p = Matrix::from_rows(&vec![vec![1.0]; 5]);
        let w = vec![1.0; 5];
        let mut rng = rng_from_seed(5);
        let idx = kmeanspp_indices(&mut rng, &p, &w, 3).unwrap();
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn kmeanspp_centers_shape() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        let mut rng = rng_from_seed(6);
        let c = kmeanspp_centers(&mut rng, &p, &w, 4).unwrap();
        assert_eq!(c.shape(), (4, 2));
    }

    #[test]
    fn d2_batch_first_round_is_weight_proportional() {
        let p = two_blob_points();
        let mut w = vec![0.0; 100];
        w[7] = 1.0;
        let mut rng = rng_from_seed(7);
        let batch = d2_sample_batch(&mut rng, &p, &w, None, 20).unwrap();
        assert!(batch.iter().all(|&i| i == 7));
    }

    #[test]
    fn d2_batch_avoids_points_at_existing_centers() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        // Center sitting exactly on blob 1 => all mass on blob 2.
        let c = Matrix::from_rows(&[vec![0.02, 0.0]]);
        let mut rng = rng_from_seed(8);
        let batch = d2_sample_batch(&mut rng, &p, &w, Some(&c), 50).unwrap();
        let far = batch.iter().filter(|&&i| i >= 50).count();
        assert!(far >= 49, "only {far}/50 samples in far blob");
    }

    #[test]
    fn draw_index_respects_distribution() {
        let mut rng = rng_from_seed(9);
        let probs = [0.0, 0.25, 0.75];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[draw_index(&mut rng, &probs).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let frac = counts[2] as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn draw_index_no_mass_errors() {
        let mut rng = rng_from_seed(10);
        assert!(draw_index(&mut rng, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn compute_f64_variant_is_the_default_path() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        for seed in 0..10 {
            let mut a = rng_from_seed(seed);
            let mut b = rng_from_seed(seed);
            let idx = kmeanspp_indices(&mut a, &p, &w, 5).unwrap();
            let idx64 = kmeanspp_indices_with(&mut b, &p, &w, 5, Compute::F64).unwrap();
            assert_eq!(idx, idx64, "seed {seed}");
        }
    }

    #[test]
    fn compute_f32_variant_is_deterministic_and_valid() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        let mut a = rng_from_seed(17);
        let mut b = rng_from_seed(17);
        let x = kmeanspp_indices_with(&mut a, &p, &w, 4, Compute::F32).unwrap();
        let y = kmeanspp_indices_with(&mut b, &p, &w, 4, Compute::F32).unwrap();
        assert_eq!(x, y);
        assert_eq!(x.len(), 4);
        let mut sorted = x.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "duplicate picks: {x:?}");
        // On well-separated blobs the f32 seeding still spreads.
        let blob = |i: usize| usize::from(i >= 50);
        assert!(x.iter().any(|&i| blob(i) == 0) && x.iter().any(|&i| blob(i) == 1));
    }

    #[test]
    fn d2_sample_batch_from_matches_assign_based_batch() {
        let p = two_blob_points();
        let w = vec![1.0; 100];
        let c = Matrix::from_rows(&[vec![0.02, 0.0]]);
        let d2 = ekm_linalg::distance::assign_blocked(&p, &c).unwrap().1;
        let mut a = rng_from_seed(12);
        let mut b = rng_from_seed(12);
        let via_centers = d2_sample_batch(&mut a, &p, &w, Some(&c), 25).unwrap();
        let via_d2 = d2_sample_batch_from(&mut b, &w, Some(&d2), 25).unwrap();
        assert_eq!(via_centers, via_d2);
    }
}
