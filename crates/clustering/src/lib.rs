//! k-means substrate for the `edge-kmeans` workspace.
//!
//! Provides the clustering machinery the paper's pipelines are built on:
//!
//! * [`cost`] — the k-means objective `cost(P, X) = Σ_p min_x ‖p − x‖²`
//!   (paper eq. (1)), weighted variants (eq. (4) without the Δ shift), and
//!   nearest-center assignment;
//! * [`init`] — k-means++ (D²) seeding, weighted;
//! * [`lloyd`] — weighted Lloyd iteration with empty-cluster repair;
//! * [`kmeans`] — a multi-restart [`KMeans`](kmeans::KMeans) driver, the
//!   `kmeans(S', w, k)` primitive run by the server in Algorithms 1–4;
//! * [`bicriteria`] — Aggarwal–Deshpande–Kannan adaptive sampling, the
//!   bicriteria approximation used by distributed sensitivity sampling and
//!   by the cost lower bound;
//! * [`lower_bound`] — the `E ≤ cost(P, X*)` estimator of §6.3.1 (a
//!   20-approximation divided by 20).
//!
//! # Example
//!
//! ```
//! use ekm_linalg::Matrix;
//! use ekm_clustering::kmeans::KMeans;
//!
//! let points = Matrix::from_rows(&[
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![10.0, 10.0], vec![10.1, 10.0],
//! ]);
//! let model = KMeans::new(2).with_seed(7).fit(&points).unwrap();
//! assert_eq!(model.centers.rows(), 2);
//! assert!(model.inertia < 0.02);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bicriteria;
pub mod cost;
mod error;
pub mod init;
pub mod kmeans;
pub mod lloyd;
pub mod lower_bound;

pub use error::ClusteringError;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, ClusteringError>;
