use ekm_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors produced by clustering routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusteringError {
    /// `k` is zero or exceeds the number of (positive-weight) points.
    InvalidK {
        /// Requested number of clusters.
        k: usize,
        /// Number of available points.
        n: usize,
    },
    /// The input dataset has no points or no dimensions.
    EmptyInput,
    /// Weights are invalid: wrong length, negative, non-finite, or all zero.
    InvalidWeights {
        /// Explanation of what is wrong.
        reason: &'static str,
    },
    /// A linear-algebra primitive failed.
    Linalg(LinalgError),
}

impl fmt::Display for ClusteringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusteringError::InvalidK { k, n } => {
                write!(f, "invalid number of clusters k={k} for {n} points")
            }
            ClusteringError::EmptyInput => write!(f, "empty input dataset"),
            ClusteringError::InvalidWeights { reason } => {
                write!(f, "invalid weights: {reason}")
            }
            ClusteringError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for ClusteringError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusteringError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ClusteringError {
    fn from(e: LinalgError) -> Self {
        ClusteringError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ClusteringError::InvalidK { k: 3, n: 2 }
            .to_string()
            .contains("k=3"));
        assert!(ClusteringError::EmptyInput.to_string().contains("empty"));
        assert!(ClusteringError::InvalidWeights { reason: "negative" }
            .to_string()
            .contains("negative"));
    }

    #[test]
    fn from_linalg_preserves_source() {
        let e: ClusteringError = LinalgError::EmptyMatrix { op: "qr" }.into();
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("qr"));
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ClusteringError>();
    }
}
