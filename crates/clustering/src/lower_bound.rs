//! Lower bound on the optimal k-means cost (paper §6.3.1).
//!
//! The quantizer configuration problem needs a value `E` with
//! `E ≤ cost(P, X*)`. Following the paper (and its reference \[36\]): run the
//! adaptive-sampling selection `⌈log(1/δ)⌉` times, keep the minimum-cost
//! selected set `X̃`; `cost(P, X̃)` is at most 20× the optimum with
//! probability `≥ 1 − δ`, so `E := cost(P, X̃)/20` is a valid lower bound.

use crate::bicriteria::{bicriteria, BicriteriaConfig};
use crate::Result;
use ekm_linalg::Matrix;

/// The provable over-approximation factor of the adaptive-sampling
/// estimator from \[36\] (see §6.3.1: "at most 20-time worse than the optimal
/// solution").
pub const ADAPTIVE_SAMPLING_FACTOR: f64 = 20.0;

/// Estimate of a lower bound `E ≤ cost(P, X*)` together with the bicriteria
/// cost it was derived from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostLowerBound {
    /// The lower bound `E = bicriteria_cost / 20`.
    pub lower_bound: f64,
    /// The cost of the best adaptive-sampling solution found.
    pub bicriteria_cost: f64,
    /// Number of trials performed (`⌈log(1/δ)⌉`, at least 1).
    pub trials: usize,
}

/// Computes the §6.3.1 lower bound on the optimal k-means cost.
///
/// `delta` is the failure probability; `⌈ln(1/δ)⌉` adaptive-sampling trials
/// are run and the cheapest one is divided by
/// [`ADAPTIVE_SAMPLING_FACTOR`].
///
/// # Errors
///
/// Propagates [`bicriteria`] errors (empty input, invalid `k`/weights).
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
/// use ekm_clustering::lower_bound::cost_lower_bound;
///
/// let p = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]);
/// let w = vec![1.0; 4];
/// let lb = cost_lower_bound(&p, &w, 2, 0.1, 42).unwrap();
/// assert!(lb.lower_bound >= 0.0);
/// ```
pub fn cost_lower_bound(
    points: &Matrix,
    weights: &[f64],
    k: usize,
    delta: f64,
    seed: u64,
) -> Result<CostLowerBound> {
    let trials = trials_for_delta(delta);
    let config = BicriteriaConfig {
        trials,
        seed,
        ..BicriteriaConfig::default()
    };
    let sol = bicriteria(points, weights, k, &config)?;
    Ok(CostLowerBound {
        lower_bound: sol.cost / ADAPTIVE_SAMPLING_FACTOR,
        bicriteria_cost: sol.cost,
        trials,
    })
}

/// Number of independent trials needed for failure probability `delta`
/// (`⌈ln(1/δ)⌉`, clamped to `[1, 64]`).
pub fn trials_for_delta(delta: f64) -> usize {
    if delta.is_nan() || delta <= 0.0 || delta >= 1.0 {
        return 1;
    }
    ((1.0 / delta).ln().ceil() as usize).clamp(1, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeans;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..60 {
            let j = i as f64 * 0.05;
            rows.push(vec![j, 0.0]);
            rows.push(vec![25.0 + j, 1.0]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn lower_bound_is_below_kmeans_cost() {
        let p = blobs();
        let w = vec![1.0; p.rows()];
        let lb = cost_lower_bound(&p, &w, 2, 0.1, 7).unwrap();
        let opt_proxy = KMeans::new(2).with_seed(1).with_n_init(5).fit(&p).unwrap();
        assert!(
            lb.lower_bound <= opt_proxy.inertia + 1e-9,
            "E = {} exceeds cost {}",
            lb.lower_bound,
            opt_proxy.inertia
        );
        assert!(lb.lower_bound > 0.0);
    }

    #[test]
    fn bound_relationship_holds() {
        let p = blobs();
        let w = vec![1.0; p.rows()];
        let lb = cost_lower_bound(&p, &w, 2, 0.05, 3).unwrap();
        assert!((lb.bicriteria_cost / ADAPTIVE_SAMPLING_FACTOR - lb.lower_bound).abs() < 1e-12);
    }

    #[test]
    fn trials_scale_with_delta() {
        assert_eq!(trials_for_delta(1.0), 1);
        assert_eq!(trials_for_delta(0.5), 1);
        assert_eq!(trials_for_delta(0.1), 3);
        assert!(trials_for_delta(1e-30) <= 64);
        assert_eq!(trials_for_delta(0.0), 1);
        assert_eq!(trials_for_delta(-1.0), 1);
    }

    #[test]
    fn zero_cost_dataset_gives_zero_bound() {
        let p = Matrix::from_rows(&[vec![2.0], vec![2.0], vec![2.0]]);
        let w = vec![1.0; 3];
        let lb = cost_lower_bound(&p, &w, 1, 0.1, 5).unwrap();
        assert_eq!(lb.lower_bound, 0.0);
    }

    #[test]
    fn propagates_errors() {
        assert!(cost_lower_bound(&Matrix::zeros(0, 1), &[], 1, 0.1, 0).is_err());
    }
}
