//! Weighted Lloyd iteration with empty-cluster repair.
//!
//! The centroid-update step is *sharded*: the points are cut into
//! fixed-size row chunks, every chunk's partial sums are computed
//! independently (on up to [`LloydConfig::shards`] scoped worker
//! threads), and the partials are folded into the global sums in chunk
//! order. Because the chunk boundaries and the fold order depend only on
//! the number of points — never on the shard count or the thread
//! schedule — the result is **bit-identical** at every shard count,
//! including the sequential `shards = 1` solve (asserted by the
//! `sharded_lloyd_*` proptests).

use crate::cost::{assign_engine, validate_weights, Assignment};
use crate::{ClusteringError, Result};
use ekm_linalg::distance::{Compute, DistanceEngine};
use ekm_linalg::{parallel, Matrix};

/// Fixed row-chunk granularity of the deterministic accumulation tree.
/// A constant (rather than `n / shards`) is what makes the fold graph —
/// and therefore the floating-point rounding — independent of the shard
/// count.
const ACCUM_CHUNK: usize = 1024;

/// Outcome of running Lloyd's algorithm from a fixed initialization.
#[derive(Debug, Clone)]
pub struct LloydOutcome {
    /// Final centers (`k × d`).
    pub centers: Matrix,
    /// Final assignment of the input points to `centers`.
    pub assignment: Assignment,
    /// Final weighted cost (inertia).
    pub inertia: f64,
    /// Iterations executed (center-update steps).
    pub iterations: usize,
    /// Whether the relative-improvement tolerance was reached before the
    /// iteration cap.
    pub converged: bool,
}

/// Configuration for [`lloyd`].
#[derive(Debug, Clone)]
pub struct LloydConfig {
    /// Maximum number of iterations (default 100).
    pub max_iter: usize,
    /// Relative improvement threshold for convergence (default `1e-7`):
    /// stop when `(prev − cur) ≤ tol · prev`.
    pub tol: f64,
    /// Worker threads for the sharded centroid update: `1` runs on the
    /// calling thread (the default), `0` follows the hardware via
    /// [`ekm_linalg::parallel::worker_count`]. Centers are bit-identical
    /// at every setting.
    pub shards: usize,
    /// Scalar precision of the assignment kernel (default
    /// [`Compute::F64`]). [`Compute::F32`] trades the f64 bit-for-bit
    /// guarantee for roughly halved memory traffic in the distance step;
    /// the centroid accumulation itself always runs in f64.
    pub compute: Compute,
}

impl Default for LloydConfig {
    fn default() -> Self {
        LloydConfig {
            max_iter: 100,
            tol: 1e-7,
            shards: 1,
            compute: Compute::F64,
        }
    }
}

/// Resolves the shard knob: 0 = hardware parallelism.
fn effective_shards(shards: usize) -> usize {
    if shards == 0 {
        parallel::worker_count()
    } else {
        shards
    }
}

/// Per-chunk partial of the weighted centroid update: `k × d` sums
/// (row-major) and `k` weight totals, accumulated in row order within
/// the chunk.
fn chunk_partial(
    points: &Matrix,
    weights: &[f64],
    labels: &[usize],
    k: usize,
    chunk: usize,
) -> (Vec<f64>, Vec<f64>) {
    let d = points.cols();
    let n = points.rows();
    let start = chunk * ACCUM_CHUNK;
    let end = (start + ACCUM_CHUNK).min(n);
    let mut sums = vec![0.0f64; k * d];
    let mut totals = vec![0.0f64; k];
    for i in start..end {
        let w = weights[i];
        if w == 0.0 {
            continue;
        }
        let c = labels[i];
        totals[c] += w;
        let srow = &mut sums[c * d..(c + 1) * d];
        for (s, &v) in srow.iter_mut().zip(points.row(i)) {
            *s += w * v;
        }
    }
    (sums, totals)
}

/// The sharded centroid-update accumulation: per-chunk partials (chunk
/// boundaries fixed by `n` alone) computed on up to `shards` workers,
/// folded into the global sums in chunk order. The computation graph is
/// identical for every `shards` value, so the result is bit-identical to
/// the sequential fold by construction.
fn accumulate_sums(
    points: &Matrix,
    weights: &[f64],
    labels: &[usize],
    k: usize,
    shards: usize,
) -> (Vec<f64>, Vec<f64>) {
    let d = points.cols();
    let n_chunks = points.rows().div_ceil(ACCUM_CHUNK).max(1);
    let workers = effective_shards(shards).min(n_chunks);
    let partials = parallel::par_map_indices_in(n_chunks, workers, |c| {
        chunk_partial(points, weights, labels, k, c)
    });
    let mut sums = vec![0.0f64; k * d];
    let mut totals = vec![0.0f64; k];
    for (psums, ptotals) in partials {
        for (s, p) in sums.iter_mut().zip(&psums) {
            *s += p;
        }
        for (t, p) in totals.iter_mut().zip(&ptotals) {
            *t += p;
        }
    }
    (sums, totals)
}

/// Runs weighted Lloyd iteration from the given initial centers.
///
/// Empty clusters are repaired by re-seeding them at the positive-weight
/// point with the largest weighted squared distance to its current center,
/// which keeps `k` centers active and never increases the objective by more
/// than the repair step itself.
///
/// # Errors
///
/// * [`ClusteringError::EmptyInput`] for an empty dataset.
/// * [`ClusteringError::InvalidWeights`] for malformed weights.
/// * [`ClusteringError::InvalidK`] if `initial_centers` has no rows.
pub fn lloyd(
    points: &Matrix,
    weights: &[f64],
    initial_centers: &Matrix,
    config: &LloydConfig,
) -> Result<LloydOutcome> {
    if points.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    validate_weights(weights, points.rows())?;
    if initial_centers.rows() == 0 {
        return Err(ClusteringError::InvalidK {
            k: 0,
            n: points.rows(),
        });
    }
    let k = initial_centers.rows();
    let d = points.cols();
    let mut centers = initial_centers.clone();
    // One engine for the whole solve: point norms (and the f32 mirror,
    // when `compute = F32`) are prepared once, not per iteration.
    let engine = DistanceEngine::new(points, config.compute);
    let mut assignment = assign_engine(&engine, &centers)?;
    let mut inertia = assignment.weighted_cost(weights);
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..config.max_iter {
        // Update step: weighted centroid per cluster, via the sharded
        // chunk-partial accumulation (bit-identical at any shard count).
        let (sums, totals) = accumulate_sums(points, weights, &assignment.labels, k, config.shards);
        for c in 0..k {
            if totals[c] > 0.0 {
                let inv = 1.0 / totals[c];
                for (j, v) in sums[c * d..(c + 1) * d].iter().enumerate() {
                    centers[(c, j)] = v * inv;
                }
            }
            // Empty clusters repaired below after distances refresh.
        }

        let mut new_assignment = assign_engine(&engine, &centers)?;

        // Repair empty clusters: move each to the worst-served point.
        let mut sizes = new_assignment.cluster_weights(k, weights);
        let mut repaired = false;
        for c in 0..k {
            if sizes[c] == 0.0 {
                if let Some(worst) = worst_point(&new_assignment, weights) {
                    for j in 0..d {
                        centers[(c, j)] = points[(worst, j)];
                    }
                    repaired = true;
                }
            }
        }
        if repaired {
            new_assignment = assign_engine(&engine, &centers)?;
            sizes = new_assignment.cluster_weights(k, weights);
            let _ = sizes;
        }

        let new_inertia = new_assignment.weighted_cost(weights);
        iterations += 1;
        let improved = inertia - new_inertia;
        assignment = new_assignment;
        let prev = inertia;
        inertia = new_inertia;
        if improved <= config.tol * prev.max(f64::MIN_POSITIVE) {
            converged = true;
            break;
        }
    }

    Ok(LloydOutcome {
        centers,
        assignment,
        inertia,
        iterations,
        converged,
    })
}

/// Index of the positive-weight point with the largest weighted distance to
/// its assigned center.
fn worst_point(assignment: &Assignment, weights: &[f64]) -> Option<usize> {
    assignment
        .distances_sq
        .iter()
        .zip(weights)
        .enumerate()
        .filter(|(_, (_, &w))| w > 0.0)
        .max_by(|(_, (d1, w1)), (_, (d2, w2))| {
            (*d1 * **w1)
                .partial_cmp(&(*d2 * **w2))
                .expect("finite distances")
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![(i % 4) as f64 * 0.1, 0.0]);
            rows.push(vec![50.0 + (i % 4) as f64 * 0.1, 0.0]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn converges_on_two_blobs() {
        let p = blobs();
        let w = vec![1.0; p.rows()];
        let init = Matrix::from_rows(&[vec![1.0, 0.0], vec![45.0, 0.0]]);
        let out = lloyd(&p, &w, &init, &LloydConfig::default()).unwrap();
        assert!(out.converged);
        assert!(out.inertia < 1.0, "inertia {}", out.inertia);
        // One center near 0.15, one near 50.15.
        let mut xs: Vec<f64> = (0..2).map(|i| out.centers[(i, 0)]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] - 0.15).abs() < 1e-9);
        assert!((xs[1] - 50.15).abs() < 1e-9);
    }

    #[test]
    fn inertia_monotonically_nonincreasing() {
        let p = blobs();
        let w = vec![1.0; p.rows()];
        let init = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0]]);
        // Run step by step by capping iterations and compare.
        let mut last = f64::INFINITY;
        for iters in 1..6 {
            let out = lloyd(
                &p,
                &w,
                &init,
                &LloydConfig {
                    max_iter: iters,
                    tol: 0.0,
                    ..LloydConfig::default()
                },
            )
            .unwrap();
            assert!(out.inertia <= last + 1e-9, "inertia rose at iter {iters}");
            last = out.inertia;
        }
    }

    #[test]
    fn weights_shift_centroid() {
        let p = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let w = vec![3.0, 1.0];
        let init = Matrix::from_rows(&[vec![0.5]]);
        let out = lloyd(&p, &w, &init, &LloydConfig::default()).unwrap();
        assert!((out.centers[(0, 0)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_gets_repaired() {
        let p = blobs();
        let w = vec![1.0; p.rows()];
        // Both initial centers inside the left blob; the far blob would
        // otherwise leave one cluster empty after the first update... force
        // an initially empty cluster with an absurd center.
        let init = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0e6, 0.0]]);
        let out = lloyd(&p, &w, &init, &LloydConfig::default()).unwrap();
        let sizes = out.assignment.cluster_sizes(2);
        assert!(sizes.iter().all(|&s| s > 0), "sizes {sizes:?}");
        assert!(out.inertia < 1.0);
    }

    #[test]
    fn zero_weight_points_ignored_in_update() {
        let p = Matrix::from_rows(&[vec![0.0], vec![100.0], vec![0.2]]);
        let w = vec![1.0, 0.0, 1.0];
        let init = Matrix::from_rows(&[vec![0.0]]);
        let out = lloyd(&p, &w, &init, &LloydConfig::default()).unwrap();
        assert!((out.centers[(0, 0)] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn single_point_single_center() {
        let p = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let out = lloyd(&p, &[2.0], &p.clone(), &LloydConfig::default()).unwrap();
        assert_eq!(out.inertia, 0.0);
        assert!(out.converged);
    }

    #[test]
    fn rejects_bad_inputs() {
        let p = Matrix::zeros(0, 2);
        let c = Matrix::from_rows(&[vec![0.0, 0.0]]);
        assert!(lloyd(&p, &[], &c, &LloydConfig::default()).is_err());
        let p = Matrix::from_rows(&[vec![0.0]]);
        assert!(lloyd(&p, &[1.0], &Matrix::zeros(0, 1), &LloydConfig::default()).is_err());
        assert!(lloyd(&p, &[-1.0], &c, &LloydConfig::default()).is_err());
    }

    #[test]
    fn f32_compute_converges_close_to_f64() {
        let p = blobs();
        let w = vec![1.0; p.rows()];
        let init = Matrix::from_rows(&[vec![1.0, 0.0], vec![45.0, 0.0]]);
        let out64 = lloyd(&p, &w, &init, &LloydConfig::default()).unwrap();
        let cfg32 = LloydConfig {
            compute: Compute::F32,
            ..LloydConfig::default()
        };
        let out32 = lloyd(&p, &w, &init, &cfg32).unwrap();
        assert!(out32.converged);
        assert!(
            (out32.inertia - out64.inertia).abs() <= 5e-3 * (1.0 + out64.inertia),
            "f32 inertia {} vs f64 {}",
            out32.inertia,
            out64.inertia
        );
    }

    #[test]
    fn max_iter_zero_returns_initial_assignment() {
        let p = blobs();
        let w = vec![1.0; p.rows()];
        let init = Matrix::from_rows(&[vec![0.0, 0.0], vec![50.0, 0.0]]);
        let cfg = LloydConfig {
            max_iter: 0,
            tol: 1e-7,
            ..LloydConfig::default()
        };
        let out = lloyd(&p, &w, &init, &cfg).unwrap();
        assert_eq!(out.iterations, 0);
        assert!(!out.converged);
        assert!(out.centers.approx_eq(&init, 0.0));
    }
}
