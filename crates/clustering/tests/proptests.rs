//! Property-based tests for the clustering substrate.

use ekm_clustering::bicriteria::{bicriteria, BicriteriaConfig};
use ekm_clustering::cost::{assign, cost, weighted_cost};
use ekm_clustering::kmeans::KMeans;
use ekm_clustering::lloyd::{lloyd, LloydConfig};
use ekm_linalg::Matrix;
use proptest::prelude::*;

fn points_strategy(max_n: usize, max_d: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_n, 1..=max_d).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-100.0f64..100.0, n * d)
            .prop_map(move |data| Matrix::from_vec(n, d, data))
    })
}

/// A random weighted instance large enough to span several accumulation
/// chunks, so the sharded update genuinely distributes work.
fn weighted_instance_strategy() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (300usize..2600, 1usize..4, 0u64..1000).prop_map(|(n, d, seed)| {
        let points = ekm_linalg::random::gaussian_matrix(seed, n, d, 25.0);
        // Deterministic positive weights with some zeros mixed in.
        let weights: Vec<f64> = (0..n)
            .map(|i| match (i + seed as usize) % 7 {
                0 => 0.0,
                r => r as f64 * 0.5,
            })
            .collect();
        (points, weights)
    })
}

/// Bitwise equality of two Lloyd outcomes (centers, inertia, labels).
fn assert_outcome_bits_equal(
    a: &ekm_clustering::lloyd::LloydOutcome,
    b: &ekm_clustering::lloyd::LloydOutcome,
) {
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    assert_eq!(a.assignment.labels, b.assignment.labels);
    assert_eq!(a.centers.shape(), b.centers.shape());
    for (x, y) in a.centers.as_slice().iter().zip(b.centers.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Assignment distances are the true minimum over centers.
    #[test]
    fn assignment_is_argmin(p in points_strategy(20, 4), seed in 0u64..100) {
        let k = 3.min(p.rows());
        let c = ekm_linalg::random::gaussian_matrix(seed, k, p.cols(), 10.0);
        let a = assign(&p, &c).unwrap();
        // The blocked kernel's norm-expansion distances agree with the
        // scalar subtract-square form to relative precision (the
        // expansion rounds in the norms' magnitude, not the gap's).
        for i in 0..p.rows() {
            let x2 = ekm_linalg::ops::dot(p.row(i), p.row(i));
            for j in 0..k {
                let d = ekm_linalg::ops::sq_dist(p.row(i), c.row(j));
                let c2 = ekm_linalg::ops::dot(c.row(j), c.row(j));
                prop_assert!(a.distances_sq[i] <= d + 1e-11 * (1.0 + x2 + c2));
            }
            let chosen = ekm_linalg::ops::sq_dist(p.row(i), c.row(a.labels[i]));
            let c2 = ekm_linalg::ops::dot(c.row(a.labels[i]), c.row(a.labels[i]));
            prop_assert!((chosen - a.distances_sq[i]).abs() <= 1e-11 * (1.0 + x2 + c2));
        }
    }

    /// Fitting with k centers never costs more than fitting with k-1
    /// (monotonicity of the best found solution in k, up to solver noise,
    /// checked on the final inertia with generous restarts).
    #[test]
    fn more_clusters_never_hurt_much(p in points_strategy(16, 3)) {
        prop_assume!(p.rows() >= 3);
        let m1 = KMeans::new(1).with_seed(3).fit(&p).unwrap();
        let m2 = KMeans::new(2).with_n_init(5).with_seed(3).fit(&p).unwrap();
        prop_assert!(m2.inertia <= m1.inertia + 1e-9);
    }

    /// Lloyd never increases the weighted objective from its initialization.
    #[test]
    fn lloyd_does_not_increase_cost(p in points_strategy(20, 3), seed in 0u64..100) {
        let k = 2.min(p.rows());
        let init = ekm_linalg::random::gaussian_matrix(seed, k, p.cols(), 50.0);
        let w = vec![1.0; p.rows()];
        let initial_cost = cost(&p, &init).unwrap();
        let out = lloyd(&p, &w, &init, &LloydConfig::default()).unwrap();
        prop_assert!(out.inertia <= initial_cost + 1e-9);
    }

    /// k-means cost is translation invariant.
    #[test]
    fn cost_translation_invariant(p in points_strategy(12, 3), shift in -50.0f64..50.0) {
        let k = 2.min(p.rows());
        let c = ekm_linalg::random::gaussian_matrix(9, k, p.cols(), 10.0);
        let base = cost(&p, &c).unwrap();
        let p2 = p.map(|v| v + shift);
        let c2 = c.map(|v| v + shift);
        let shifted = cost(&p2, &c2).unwrap();
        prop_assert!((base - shifted).abs() < 1e-6 * (1.0 + base));
    }

    /// Scaling all points and centers by s scales the cost by s².
    #[test]
    fn cost_scales_quadratically(p in points_strategy(12, 3), s in 0.1f64..4.0) {
        let k = 2.min(p.rows());
        let c = ekm_linalg::random::gaussian_matrix(10, k, p.cols(), 10.0);
        let base = cost(&p, &c).unwrap();
        let scaled = cost(&p.scaled(s), &c.scaled(s)).unwrap();
        prop_assert!((scaled - s * s * base).abs() < 1e-6 * (1.0 + scaled.abs()));
    }

    /// Duplicating a point equals doubling its weight.
    #[test]
    fn duplication_equals_weight(p in points_strategy(10, 2), idx_seed in 0u64..1000) {
        let n = p.rows();
        let dup = (idx_seed as usize) % n;
        let k = 2.min(n);
        let c = ekm_linalg::random::gaussian_matrix(11, k, p.cols(), 10.0);
        let mut w = vec![1.0; n];
        w[dup] = 2.0;
        let weighted = weighted_cost(&p, &w, &c).unwrap();
        let mut indices: Vec<usize> = (0..n).collect();
        indices.push(dup);
        let unweighted = cost(&p.select_rows(&indices), &c).unwrap();
        prop_assert!((weighted - unweighted).abs() < 1e-9 * (1.0 + weighted));
    }

    /// Bicriteria cost is an upper bound on... nothing smaller than the
    /// k-means optimum; here: bicriteria with many centers costs at most
    /// the single-center optimum.
    #[test]
    fn bicriteria_beats_one_center(p in points_strategy(15, 3)) {
        let w = vec![1.0; p.rows()];
        let sol = bicriteria(&p, &w, 2, &BicriteriaConfig::default()).unwrap();
        let one = KMeans::new(1).with_seed(1).fit(&p).unwrap();
        prop_assert!(sol.cost <= one.inertia + 1e-9);
    }
}

proptest! {
    // Fewer, heavier cases: each runs ten full Lloyd solves on up to a
    // few thousand points.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharded Lloyd solve is bit-identical to the sequential solve
    /// at every tested shard count, on random weighted instances — and
    /// invariant to thread scheduling (each sharded case runs twice).
    #[test]
    fn sharded_lloyd_bit_identical_to_sequential(
        (p, w) in weighted_instance_strategy(),
        seed in 0u64..100,
    ) {
        let k = 3;
        let init = ekm_linalg::random::gaussian_matrix(seed, k, p.cols(), 40.0);
        let solve = |shards: usize| {
            lloyd(&p, &w, &init, &LloydConfig { shards, ..LloydConfig::default() }).unwrap()
        };
        let sequential = solve(1);
        prop_assert!(sequential.inertia.is_finite());
        for shards in [2usize, 4, 8] {
            let first = solve(shards);
            let second = solve(shards);
            assert_outcome_bits_equal(&sequential, &first);
            assert_outcome_bits_equal(&first, &second);
        }
        // `shards = 0` (hardware auto) is the same computation graph too.
        assert_outcome_bits_equal(&sequential, &solve(0));
    }

    /// The same invariance holds through the multi-restart `KMeans`
    /// driver — the server-side solve the engine actually calls.
    #[test]
    fn sharded_kmeans_bit_identical_to_sequential(
        (p, w) in weighted_instance_strategy(),
        seed in 0u64..100,
    ) {
        let fit = |shards: usize| {
            KMeans::new(2)
                .with_n_init(2)
                .with_seed(seed)
                .with_shards(shards)
                .fit_weighted(&p, &w)
                .unwrap()
        };
        let sequential = fit(1);
        for shards in [2usize, 8] {
            let model = fit(shards);
            prop_assert_eq!(model.inertia.to_bits(), sequential.inertia.to_bits());
            prop_assert_eq!(&model.labels, &sequential.labels);
            for (x, y) in model.centers.as_slice().iter().zip(sequential.centers.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
