//! # edge-kmeans
//!
//! A reproduction of **"Communication-efficient k-Means for Edge-based
//! Machine Learning"** (Lu, He, Wang, Liu, Mahdavi, Narayanan, Chan,
//! Pasteris; ICDCS 2020 / arXiv:2102.04282): computing provably accurate
//! k-means centers for a large, high-dimensional dataset held by edge
//! devices, by sending the server a *small summary* built from a carefully
//! ordered composition of
//!
//! * **DR** — data-oblivious Johnson–Lindenstrauss projection (seeded,
//!   never transmitted),
//! * **CR** — sensitivity-sampling coresets (FSS),
//! * **QT** — rounding-based quantization,
//!
//! and solving k-means on the summary at the server.
//!
//! This facade re-exports the full workspace API:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`linalg`] | dense matrices, QR, eigen/SVD, Cholesky, pseudo-inverse |
//! | [`clustering`] | weighted Lloyd/k-means++, bicriteria approximation |
//! | [`sketch`] | JL projections, PCA, target-dimension formulas |
//! | [`coreset`] | ε-coresets, sensitivity sampling, FSS |
//! | [`quant`] | the rounding quantizer Γ and the §6.3 optimizer |
//! | [`net`] | bit-exact edge network: transport abstraction, in-process simulation, TCP backend |
//! | [`data`] | MNIST-like / NeurIPS-like workloads, normalization |
//! | [`core`] | Algorithms 1–4, FSS, BKLW, and the +QT variants |
//!
//! # Quickstart
//!
//! ```
//! use edge_kmeans::prelude::*;
//!
//! // An edge device holds a dataset it cannot afford to upload raw.
//! let raw = edge_kmeans::data::synth::GaussianMixture::new(2_000, 64, 2)
//!     .with_separation(4.0)
//!     .with_seed(1)
//!     .generate()
//!     .unwrap()
//!     .points;
//! let (dataset, _) = edge_kmeans::data::normalize::normalize_paper(&raw);
//!
//! // Algorithm 3 (JL+FSS+JL): near-linear device work, tiny summary.
//! let params = SummaryParams::practical(2, dataset.rows(), dataset.cols()).with_seed(42);
//! let mut net = Network::new(1);
//! let out = JlFssJl::new(params).run(&dataset, &mut net).unwrap();
//!
//! // Centers live in the original 64-dimensional space.
//! assert_eq!(out.centers.shape(), (2, 64));
//! // The summary is a small fraction of the raw data.
//! assert!(out.normalized_comm(dataset.rows(), dataset.cols()) < 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ekm_clustering as clustering;
pub use ekm_core as core;
pub use ekm_coreset as coreset;
pub use ekm_data as data;
pub use ekm_linalg as linalg;
pub use ekm_net as net;
pub use ekm_quant as quant;
pub use ekm_sketch as sketch;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use ekm_clustering::kmeans::KMeans;
    pub use ekm_core::distributed::{Bklw, BklwJl, DistributedPipeline, JlBklw};
    pub use ekm_core::evaluation;
    pub use ekm_core::params::{SummaryParams, Topology};
    pub use ekm_core::pipelines::{CentralizedPipeline, Fss, FssJl, JlFss, JlFssJl, NoReduction};
    pub use ekm_core::{
        RunOutput, SourceExecutor, SourceRunReport, Stage, StageCache, StagePipeline,
    };
    pub use ekm_coreset::{Coreset, FssBuilder};
    pub use ekm_linalg::Matrix;
    pub use ekm_net::wire::Precision;
    pub use ekm_net::{Network, Transport, TransportLink};
    pub use ekm_quant::{QtOptimizer, RoundingQuantizer};
    pub use ekm_sketch::{JlKind, JlProjection, Pca};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let m = Matrix::identity(2);
        assert_eq!(m.rows(), 2);
        let _ = KMeans::new(2);
        let _ = Network::new(1);
        let _ = RoundingQuantizer::new(8).unwrap();
        let _ = JlProjection::generate(JlKind::Gaussian, 4, 2, 0);
    }
}
