//! `ekm` — command-line driver for the edge-kmeans pipelines.
//!
//! ```text
//! ekm run    --pipeline jl-fss-jl --dataset mnist-like --n 2000 --k 2
//! ekm run    --stages jl,fss,qt,jl --quantize 8
//! ekm sweep  --dataset neurips-like --n 1500 --d 500
//! ekm sweep  --stages "jl,fss,qt;dispca,jl,disss"
//! ekm qtopt  --dataset mnist-like --y0 2.0
//! ekm serve  --listen 127.0.0.1:7000 --pipeline jl-bklw --sources 3
//! ekm source --connect 127.0.0.1:7000 --source-id 0 --pipeline jl-bklw --sources 3
//! ekm --help
//! ```
//!
//! Argument parsing is hand-rolled (the workspace deliberately carries no
//! CLI dependency); every flag has a sensible default so `ekm run` alone
//! does something useful.

use edge_kmeans::clustering::lower_bound::cost_lower_bound;
use edge_kmeans::core::executor::SourceExecutor;
use edge_kmeans::core::journal::JournalingTransport;
use edge_kmeans::core::CoreError;
use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::neurips_like::NeurIpsLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::net::event::{EventServerBinding, EventTcpServer, EventTcpSource};
use edge_kmeans::net::protocol::{Command, DeadlinePolicy, Response, SourceEndpoint};
use edge_kmeans::net::reactor::{ReactorChoice, ReactorKind};
use edge_kmeans::net::tcp::{self, RunDigest, TcpServerBinding, TcpSource};
use edge_kmeans::net::wire::{Compute, Precision};
use edge_kmeans::net::{CommandTransport, NetError, NetworkStats, RoutingTransport, Transport};
use edge_kmeans::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

const HELP: &str = "\
ekm — communication-efficient k-means for edge-based machine learning

USAGE:
    ekm <COMMAND> [FLAGS]

COMMANDS:
    run      run one pipeline end to end and print the three paper metrics
    sweep    run every pipeline on one dataset (the Figure 1 comparison);
             stage outputs are memoized across pipelines, so compositions
             sharing a prefix (e.g. jl,fss under several QT widths)
             compute it once — outputs are bit-identical either way
    qtopt    run the Section 6.3 quantizer-configuration optimizer
    serve    run the server of a distributed deployment over real TCP:
             drives the server-side protocol over every connected source
             process (event-driven, one thread) — the sources hold the
             data, the server holds the plan; with --replicated-check it
             instead runs the replicated SPMD debug mode with per-frame
             byte-equality divergence checks
    source   run one data-source process of a distributed deployment
             (launch with the same dataset/pipeline flags as the server);
             in the default protocol mode the process keeps only its own
             shard and answers the server's commands
    eval     compute the absolute k-means cost of saved centers
             (--centers <file>) on the dataset the flags describe
    help     show this message

FLAGS (with defaults):
    --listen <addr>     serve: listen address, e.g. 127.0.0.1:7000
    --connect <addr>    source: the server's address
    --source-id <int>   source: which source this process plays
    --pipeline <name>   nr | fss | jl-fss | fss-jl | jl-fss-jl |
                        bklw | jl-bklw | bklw-jl    [jl-fss-jl]
    --stages <list>     run an arbitrary DR/CR/QT composition instead of
                        a named pipeline: comma-separated stages from
                        jl, fss, stream, stream:<leaf>, qt, qt:<bits>,
                        dispca, disss (e.g. --stages jl,stream,qt); for
                        sweep, several compositions joined with ';'
    --dataset <name>    mnist-like | neurips-like | mixture   [mnist-like]
    --n <int>           dataset cardinality                    [2000]
    --d <int>           dataset dimensionality (mixture/neurips) [196]
    --k <int>           clusters                               [2]
    --sources <int>     data sources (distributed pipelines)   [10]
    --seed <int>        RNG seed                               [42]
    --quantize <bits>   add the +QT variant with s significant bits
    --precision <p>     f64 | f32: wire precision of the auxiliary
                        payloads (bases, coreset weights, SVD
                        summaries); f32 halves them             [f64]
    --compute <p>       f64 | f32: distance-kernel precision on the
                        sources and the server; f64 is the
                        bit-reproducibility reference, f32 trades
                        ~1e-2 relative accuracy for speed       [f64]
    --leaf-size <int>   stream stage leaf-buffer size [2x coreset size]
    --threads <int>     cap worker threads (sharded solve, per-source
                        fan-out); 0 follows the hardware        [0]
    --parallel <on|off> run: the server-driven channel backend (one
                        executor thread per source) vs the sequential
                        in-process simulation — bit-identical   [on]
    --topology <t>      star | tree: summary aggregation of the
                        server-driven protocol — star uplinks every
                        summary to the server, tree pairwise-merges
                        them at the sources in ceil(log2 s) rounds so
                        the server folds a single input; results are
                        bit-identical                           [star]
    --reactor <r>       epoll | sleep: serve's readiness backend — epoll
                        parks in the kernel until a source frame (or a
                        deadline) is due, sleep is the portable 200 µs
                        sweep-and-park fallback; results and ledgers are
                        bit-identical either way               [epoll]
    --no-cache          sweep: disable the stage-output cache
    --cache-budget <b>  sweep: bound the stage cache to ~b bytes with
                        least-recently-used eviction
    --replicated-check  serve/source: replicated SPMD debug mode (every
                        process recomputes the full run; per-frame
                        byte-equality divergence checks)
    --y0 <float>        qtopt error budget                     [2.0]

FAULT TOLERANCE (serve/source, protocol mode):
    --deadline-ms <ms>  per-command deadline: a source that misses it is
                        reissued the round once, then dropped — the run
                        completes degraded on the survivors and reports
                        the documented cost-ratio bound
    --replication <r>   serve/source/run: hold every shard on r sources
                        (its owner plus r-1 ring replicas, kept cold);
                        a lost owner is re-homed onto a live replica
                        and its finished rounds replayed, so the run
                        recovers bit-identical instead of degrading [1]
    --journal <path>    serve: write-ahead journal of every command
                        round, for deterministic crash recovery
    --resume            serve: replay the journal to the pre-crash state
                        (bit-identical), reconcile the round in flight
                        from the executors' fingerprints, finish live
    --centers-out <f>   run/serve: save the centers losslessly (hex-
                        encoded f64 bits), for `ekm eval` comparisons
    --centers <file>    eval: the saved centers to score
    --cache-dir <dir>   sweep: disk tier under the stage cache — evicted
                        snapshots spill to files and come back as hits
    --reconnect <secs>  source: keep reconnecting for this long when the
                        server vanishes mid-run (crash recovery window)
    --crash-after-commands <n>  serve: exit(42) after n journaled
                        commands (fault-injection testing)
    --fail-after-commands <n>   source: exit(43) after n served
                        commands (fault-injection testing)

EXAMPLES:
    ekm run --pipeline jl-bklw --sources 10
    ekm run --stages jl,fss,qt,jl --quantize 8
    ekm run --stages jl,stream,qt --sources 8 --leaf-size 256
    ekm run --stages dispca,jl,disss --sources 5
    ekm run --pipeline jl-fss --precision f32
    ekm sweep --dataset mnist-like --quantize 10
    ekm sweep --stages \"jl,fss;fss,jl,qt:6;jl,stream,qt\"
    ekm serve --listen 127.0.0.1:7000 --pipeline bklw --sources 2 &
    ekm source --connect 127.0.0.1:7000 --source-id 0 --pipeline bklw --sources 2 &
    ekm source --connect 127.0.0.1:7000 --source-id 1 --pipeline bklw --sources 2
    ekm serve --listen 127.0.0.1:7000 --stages dispca,disss --sources 3 \\
              --journal run.journal --deadline-ms 30000 --centers-out centers.txt
    ekm serve --listen 127.0.0.1:7000 --stages dispca,disss --sources 3 \\
              --journal run.journal --resume --centers-out resumed.txt
    ekm eval --dataset mixture --n 600 --d 40 --k 2 --centers centers.txt
";

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["no-cache", "replicated-check", "resume"];

/// Valid `--pipeline` names, for dispatch and error messages.
const PIPELINES: &[&str] = &[
    "nr",
    "fss",
    "jl-fss",
    "fss-jl",
    "jl-fss-jl",
    "bklw",
    "jl-bklw",
    "bklw-jl",
];

#[derive(Debug)]
struct Args {
    command: String,
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut command = String::from("help");
        let mut flags = HashMap::new();
        let mut i = 0;
        let mut saw_command = false;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if name == "help" {
                    return Ok(Args {
                        command: "help".into(),
                        flags,
                    });
                }
                if BOOLEAN_FLAGS.contains(&name) {
                    flags.insert(name.to_string(), "true".into());
                    i += 1;
                    continue;
                }
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.insert(name.to_string(), value.clone());
                i += 2;
            } else {
                if saw_command {
                    return Err(format!("unexpected argument '{a}'"));
                }
                command = a.clone();
                saw_command = true;
                i += 1;
            }
        }
        Ok(Args { command, flags })
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("--{name} expects an integer, got '{v}'")),
        }
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| format!("--{name} expects an integer, got '{v}'")),
        }
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<f64>()
                .map_err(|_| format!("--{name} expects a number, got '{v}'")),
        }
    }

    fn get_str(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

/// The mnist-like pixel-grid side for a requested dimensionality — one
/// derivation shared by `build_dataset` (sources) and `dataset_shape`
/// (the data-less protocol server), so the two ends can never disagree
/// on the effective `d`.
fn mnist_side(d: usize) -> usize {
    ((d as f64).sqrt().round() as usize).max(4)
}

fn build_dataset(args: &Args) -> Result<Matrix, String> {
    let n = args.get_usize("n", 2000)?;
    let d = args.get_usize("d", 196)?;
    let seed = args.get_u64("seed", 42)?;
    let raw = match args.get_str("dataset", "mnist-like").as_str() {
        "mnist-like" => {
            MnistLike::new(n, mnist_side(d))
                .with_seed(seed)
                .generate()
                .map_err(|e| e.to_string())?
                .points
        }
        "neurips-like" => {
            NeurIpsLike::new(n, d)
                .with_seed(seed)
                .generate()
                .map_err(|e| e.to_string())?
                .points
        }
        "mixture" => {
            let k = args.get_usize("k", 2)?;
            GaussianMixture::new(n, d, k)
                .with_separation(4.0)
                .with_seed(seed)
                .generate()
                .map_err(|e| e.to_string())?
                .points
        }
        other => return Err(format!("unknown dataset '{other}'")),
    };
    Ok(normalize_paper(&raw).0)
}

fn build_params(args: &Args, n: usize, d: usize) -> Result<SummaryParams, String> {
    let k = args.get_usize("k", 2)?;
    let seed = args.get_u64("seed", 42)?;
    let mut params = SummaryParams::practical(k, n, d).with_seed(seed);
    if let Some(bits) = args.flags.get("quantize") {
        let s: u32 = bits
            .parse()
            .map_err(|_| format!("--quantize expects bits, got '{bits}'"))?;
        params = params.with_quantizer(RoundingQuantizer::new(s).map_err(|e| e.to_string())?);
    }
    match args.get_str("precision", "f64").as_str() {
        "f64" => {}
        "f32" => params = params.with_precision(Precision::F32),
        other => return Err(format!("--precision expects f64|f32, got '{other}'")),
    }
    let compute_flag = args.get_str("compute", "f64");
    match Compute::parse(&compute_flag) {
        Some(c) => params = params.with_compute(c),
        None => return Err(format!("--compute expects f64|f32, got '{compute_flag}'")),
    }
    if args.flags.contains_key("leaf-size") {
        let leaf = args.get_usize("leaf-size", 0)?;
        if leaf == 0 {
            return Err("--leaf-size expects a positive integer".into());
        }
        params = params.with_stream_leaf_size(leaf);
    }
    let threads = args.get_usize("threads", 0)?;
    if threads > 0 {
        // Caps the sharded server solve and every per-source fan-out;
        // results are bit-identical at any setting.
        edge_kmeans::linalg::parallel::set_worker_count(threads);
        params = params.with_solver_shards(threads);
    }
    let topology_flag = args.get_str("topology", "star");
    match Topology::parse(&topology_flag) {
        Ok(t) => params = params.with_topology(t),
        Err(_) => {
            return Err(format!(
                "--topology expects star|tree, got '{topology_flag}'"
            ))
        }
    }
    let replication = args.get_usize("replication", 1)?;
    if replication == 0 {
        return Err("--replication expects a positive replica count".into());
    }
    params = params.with_replication(replication);
    if args.flags.contains_key("deadline-ms") {
        let ms = args.get_u64("deadline-ms", 0)?;
        if ms == 0 {
            return Err("--deadline-ms expects a positive millisecond count".into());
        }
        // One knob for every transport: the driver announces it to the
        // sources at the start of the run. Deliberately excluded from
        // the stage keys and the handshake fingerprint — deadlines
        // never shape the bits.
        params = params.with_deadline(DeadlinePolicy::uniform(Duration::from_millis(ms)));
    }
    Ok(params)
}

/// Saves centers losslessly: a `rows cols` header line, then one line
/// per center of space-separated hex-encoded `f64` bit patterns — so an
/// `ekm eval` of a `--centers-out` file scores *exactly* the centers
/// the run produced.
fn write_centers(path: &str, centers: &Matrix) -> Result<(), String> {
    let (rows, cols) = centers.shape();
    let mut text = format!("{rows} {cols}\n");
    for i in 0..rows {
        let row: Vec<String> = (0..cols)
            .map(|j| format!("{:016x}", centers[(i, j)].to_bits()))
            .collect();
        text.push_str(&row.join(" "));
        text.push('\n');
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Reads a `write_centers` file back, bit-exactly.
fn read_centers(path: &str) -> Result<Matrix, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| format!("{path} is empty"))?;
    let dims: Vec<usize> = header
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| format!("bad header in {path}: '{header}'"))
        })
        .collect::<Result<_, _>>()?;
    let [rows, cols] = dims[..] else {
        return Err(format!("bad header in {path}: '{header}'"));
    };
    let mut data = Vec::with_capacity(rows * cols);
    for (i, line) in lines.enumerate() {
        for tok in line.split_whitespace() {
            let bits = u64::from_str_radix(tok, 16)
                .map_err(|_| format!("bad f64 bits '{tok}' on line {} of {path}", i + 2))?;
            data.push(f64::from_bits(bits));
        }
    }
    if data.len() != rows * cols {
        return Err(format!(
            "{path} holds {} values, expected {rows}x{cols}",
            data.len()
        ));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Resolves a `--pipeline` name to its canned stage list.
fn resolve_named(name: &str, params: &SummaryParams) -> Result<StagePipeline, String> {
    let p = params.clone();
    Ok(match name {
        "nr" => NoReduction::new(p).into_stage_pipeline(),
        "fss" => Fss::new(p).into_stage_pipeline(),
        "jl-fss" => JlFss::new(p).into_stage_pipeline(),
        "fss-jl" => FssJl::new(p).into_stage_pipeline(),
        "jl-fss-jl" => JlFssJl::new(p).into_stage_pipeline(),
        "bklw" => Bklw::new(p).into_stage_pipeline(),
        "jl-bklw" => JlBklw::new(p).into_stage_pipeline(),
        "bklw-jl" => BklwJl::new(p).into_stage_pipeline(),
        other => {
            return Err(format!(
                "unknown pipeline '{other}' (valid pipelines: {}; or use --stages with: {})",
                PIPELINES.join(", "),
                Stage::vocabulary()
            ))
        }
    })
}

/// The pipelines `ekm run`/`ekm sweep` will execute: either one named
/// pipeline / `--stages` composition (run) or the default seven plus any
/// `--stages` extras (sweep).
fn select_pipelines(
    args: &Args,
    params: &SummaryParams,
    sweep: bool,
) -> Result<Vec<StagePipeline>, String> {
    let parallel = match args.get_str("parallel", "on").as_str() {
        "on" | "true" | "1" => true,
        "off" | "false" | "0" => false,
        other => return Err(format!("--parallel expects on|off, got '{other}'")),
    };
    let stages_flag = args.flags.get("stages");
    if args.flags.contains_key("pipeline") && stages_flag.is_some() {
        return Err("--pipeline and --stages are mutually exclusive".into());
    }
    let mut pipelines = Vec::new();
    if sweep {
        for name in [
            "nr",
            "fss",
            "jl-fss",
            "fss-jl",
            "jl-fss-jl",
            "bklw",
            "jl-bklw",
        ] {
            pipelines.push(resolve_named(name, params)?);
        }
        if let Some(lists) = stages_flag {
            for list in lists.split(';').filter(|l| !l.trim().is_empty()) {
                pipelines.push(composition_from(list, params)?);
            }
        }
    } else if let Some(list) = stages_flag {
        pipelines.push(composition_from(list, params)?);
    } else {
        pipelines.push(resolve_named(
            &args.get_str("pipeline", "jl-fss-jl"),
            params,
        )?);
    }
    Ok(pipelines
        .into_iter()
        .map(|p| p.with_parallel(parallel))
        .collect())
}

/// Builds a `--stages` composition, honoring `--quantize` the way the
/// named `+QT` variants do: if the list has no explicit `qt` stage, one
/// is armed before the summary is transmitted (before `disss` in
/// distributed lists, since quantization applies to the wire).
fn composition_from(list: &str, params: &SummaryParams) -> Result<StagePipeline, String> {
    let stages = Stage::parse_list(list).map_err(|e| e.to_string())?;
    let stages = edge_kmeans::core::stage::with_default_qt(stages, params);
    Ok(StagePipeline::new(stages, params.clone()))
}

fn report_line(
    pipe: &StagePipeline,
    data: &Matrix,
    out: &RunOutput,
    reference_cost: f64,
) -> Result<(), String> {
    let (n, d) = data.shape();
    let display = pipe.name();
    let nc = evaluation::normalized_cost(data, &out.centers, reference_cost)
        .map_err(|e| e.to_string())?;
    println!(
        "{display:<14} cost {nc:>8.4}   comm {:>10.3e}   source {:>8.4}s ({:>9.3e} ops)   summary {:>6} pts",
        out.normalized_comm(n, d),
        out.source_seconds,
        out.source_ops as f64,
        out.summary_points
    );
    Ok(())
}

/// The per-source shards a pipeline runs over.
fn shard_data(pipe: &StagePipeline, data: &Matrix, sources: usize) -> Result<Vec<Matrix>, String> {
    if pipe.is_distributed() {
        partition_uniform(data, sources, pipe.params().seed).map_err(|e| e.to_string())
    } else {
        Ok(vec![data.clone()])
    }
}

fn run_one(
    pipe: &StagePipeline,
    data: &Matrix,
    sources: usize,
    reference_cost: f64,
    cache: Option<&mut StageCache>,
) -> Result<(), String> {
    let out = if pipe.is_distributed() {
        let shards = shard_data(pipe, data, sources)?;
        let mut net = Network::new(sources);
        match cache {
            Some(cache) => pipe.run_shards_cached(&shards, &mut net, cache),
            None => pipe.run_shards(&shards, &mut net),
        }
        .map_err(|e| e.to_string())?
    } else {
        let mut net = Network::new(1);
        match cache {
            Some(cache) => pipe.run_cached(data, &mut net, cache),
            None => pipe.run(data, &mut net),
        }
        .map_err(|e| e.to_string())?
    };
    report_line(pipe, data, &out, reference_cost)
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let data = build_dataset(args)?;
    let (n, d) = data.shape();
    let params = build_params(args, n, d)?;
    let sources = args.get_usize("sources", 10)?;
    let pipelines = select_pipelines(args, &params, false)?;
    let pipe = &pipelines[0];
    println!("dataset {n} x {d}, k = {}", params.k);
    let reference = evaluation::reference(&data, params.k, 5, 1).map_err(|e| e.to_string())?;
    println!("reference cost: {:.4}\n", reference.cost);
    let parallel = args.get_str("parallel", "on") != "off";
    let out = if parallel {
        // The server-driven channel backend: one executor thread per
        // source, each holding only its shard; the driver folds their
        // responses — bit-identical to the in-process simulation.
        let shards = shard_data(pipe, &data, sources)?;
        pipe.run_channel(shards).map_err(|e| e.to_string())?
    } else {
        // Sequential in-process simulation (the debugging reference).
        let shards = shard_data(pipe, &data, sources)?;
        let mut net = Network::new(shards.len());
        pipe.run_shards(&shards, &mut net)
            .map_err(|e| e.to_string())?
    };
    report_line(pipe, &data, &out, reference.cost)?;
    println!("total uplink-bits {}", out.uplink_bits);
    if let Some(path) = args.flags.get("centers-out") {
        write_centers(path, &out.centers)?;
        println!("centers saved to {path}");
    }
    Ok(())
}

/// Scores saved centers against the dataset the flags describe: the
/// fault-injection CI suite uses this to compare a degraded run's cost
/// against its clean twin's without either serve process holding data.
fn cmd_eval(args: &Args) -> Result<(), String> {
    let path = args
        .flags
        .get("centers")
        .ok_or("eval needs --centers <path>")?;
    let centers = read_centers(path)?;
    let data = build_dataset(args)?;
    let (n, d) = data.shape();
    if centers.cols() != d {
        return Err(format!(
            "centers have {} columns but the dataset has {d}",
            centers.cols()
        ));
    }
    let cost = edge_kmeans::clustering::cost::cost(&data, &centers).map_err(|e| e.to_string())?;
    println!("dataset {n} x {d}, centers {}", centers.rows());
    println!("cost {cost:.17e}");
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    // The cache-tier flags shape a cache that --no-cache removes:
    // honoring one silently would surprise, so the combination is a
    // usage error — rejected before any dataset work.
    if args.flags.contains_key("no-cache") {
        for conflicting in ["cache-budget", "cache-dir"] {
            if args.flags.contains_key(conflicting) {
                return Err(format!(
                    "--{conflicting} conflicts with --no-cache: the stage cache is disabled"
                ));
            }
        }
    }
    let data = build_dataset(args)?;
    let (n, d) = data.shape();
    let params = build_params(args, n, d)?;
    let sources = args.get_usize("sources", 10)?;
    let pipelines = select_pipelines(args, &params, true)?;
    println!("dataset {n} x {d}, k = {}", params.k);
    let reference = evaluation::reference(&data, params.k, 5, 1).map_err(|e| e.to_string())?;
    println!("reference cost: {:.4}\n", reference.cost);
    // Stage outputs are memoized across the sweep's pipelines (shared
    // prefixes like `jl,fss` under several QT widths run once, with
    // bit-identical outputs and accounting); --no-cache turns it off.
    let mut cache = if args.flags.contains_key("no-cache") {
        None
    } else if args.flags.contains_key("cache-budget") {
        let budget = args.get_usize("cache-budget", 0)?;
        if budget == 0 {
            return Err("--cache-budget expects a positive byte count".into());
        }
        Some(StageCache::with_budget(budget))
    } else {
        Some(StageCache::new())
    };
    if let Some(dir) = args.flags.get("cache-dir") {
        let Some(memory) = cache.take() else {
            return Err("--cache-dir conflicts with --no-cache".into());
        };
        // Entries the memory budget evicts spill to FNV-keyed files
        // under `dir` instead of being recomputed; 256 MiB on disk.
        cache = Some(
            memory
                .with_disk_tier(Path::new(dir), 256 << 20)
                .map_err(|e| format!("--cache-dir {dir}: {e}"))?,
        );
    }
    // Keep sweeping after a failure so the table stays comparable, but
    // report every failure and exit nonzero if any pipeline failed.
    let mut failures = Vec::new();
    for pipe in &pipelines {
        if let Err(e) = run_one(pipe, &data, sources, reference.cost, cache.as_mut()) {
            eprintln!("{:<14} error: {e}", pipe.name());
            failures.push(pipe.name());
        }
    }
    if let Some(cache) = &cache {
        println!(
            "\nstage cache: {} hits, {} misses, {} evictions over {} entries \
             (~{} bytes held, hit rate {:.2})",
            cache.hits(),
            cache.misses(),
            cache.evictions(),
            cache.len(),
            cache.held_bytes(),
            cache.hit_rate()
        );
        if args.flags.contains_key("cache-dir") {
            println!(
                "disk tier: {} spills, {} disk hits",
                cache.spills(),
                cache.disk_hits()
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} pipelines failed: {}",
            failures.len(),
            pipelines.len(),
            failures.join(", ")
        ))
    }
}

/// Everything both ends of a distributed deployment derive from the
/// shared CLI flags: the pipeline, the per-source shards, and the
/// configuration fingerprint presented during the TCP handshake.
struct DistRun {
    pipe: StagePipeline,
    parts: Vec<Matrix>,
    m: usize,
    fingerprint: u64,
    n: usize,
    d: usize,
}

/// The `--reactor` choice for the event backend. Validated wherever the
/// flag is accepted (serve uses it, source tolerates it so both halves
/// of an e2e script can share one flag set), and deliberately excluded
/// from [`canonical_config`]: the reactor schedules wakeups, it never
/// shapes the bits.
fn reactor_choice(args: &Args) -> Result<ReactorChoice, String> {
    match args.flags.get("reactor") {
        None => Ok(ReactorChoice::default()),
        Some(v) => ReactorChoice::parse(v),
    }
}

/// The canonical configuration string hashed into the handshake
/// fingerprint. Covers every flag that affects the run's bits;
/// `--parallel` is deliberately excluded (results are bit-identical
/// either way, so the two ends may schedule differently).
fn canonical_config(args: &Args, m: usize) -> Result<String, String> {
    Ok(format!(
        "dataset={};n={};d={};k={};seed={};pipeline={};stages={};quantize={};\
         precision={};compute={};leaf-size={};sources={m};topology={};replication={}",
        args.get_str("dataset", "mnist-like"),
        args.get_usize("n", 2000)?,
        args.get_usize("d", 196)?,
        args.get_usize("k", 2)?,
        args.get_u64("seed", 42)?,
        args.get_str("pipeline", "jl-fss-jl"),
        args.get_str("stages", "-"),
        args.get_str("quantize", "-"),
        args.get_str("precision", "f64"),
        args.get_str("compute", "f64"),
        args.get_str("leaf-size", "-"),
        args.get_str("topology", "star"),
        args.get_usize("replication", 1)?,
    ))
}

/// Builds the deterministic run both `ekm serve` and `ekm source`
/// replicate: same dataset, same shards, same pipeline, same seeds.
fn prepare_dist_run(args: &Args) -> Result<DistRun, String> {
    let data = build_dataset(args)?;
    let (n, d) = data.shape();
    let params = build_params(args, n, d)?;
    let sources = args.get_usize("sources", 10)?;
    let pipe = select_pipelines(args, &params, false)?
        .into_iter()
        .next()
        .expect("one pipeline selected");
    let (parts, m) = if pipe.is_distributed() {
        let shards =
            partition_uniform(&data, sources, pipe.params().seed).map_err(|e| e.to_string())?;
        (shards, sources)
    } else {
        // Centralized pipelines have a single data source holding the
        // whole dataset.
        (vec![data], 1)
    };
    let fingerprint = tcp::fingerprint(&canonical_config(args, m)?);
    Ok(DistRun {
        pipe,
        parts,
        m,
        fingerprint,
        n,
        d,
    })
}

/// What the *server* of a non-replicated deployment derives from the
/// shared CLI flags: the plan, the source count, and the handshake
/// fingerprint — never the data.
struct DistPlan {
    pipe: StagePipeline,
    m: usize,
    fingerprint: u64,
    n: usize,
    d: usize,
}

/// The dataset shape the flags describe, without generating the data
/// (the protocol server holds no shard; it only needs `n × d` for the
/// normalized-communication metric and the parameter derivations).
fn dataset_shape(args: &Args) -> Result<(usize, usize), String> {
    let n = args.get_usize("n", 2000)?;
    let d = args.get_usize("d", 196)?;
    match args.get_str("dataset", "mnist-like").as_str() {
        "mnist-like" => {
            let side = mnist_side(d);
            Ok((n, side * side))
        }
        "neurips-like" | "mixture" => Ok((n, d)),
        other => Err(format!("unknown dataset '{other}'")),
    }
}

fn prepare_dist_plan(args: &Args) -> Result<DistPlan, String> {
    let (n, d) = dataset_shape(args)?;
    let params = build_params(args, n, d)?;
    let sources = args.get_usize("sources", 10)?;
    let pipe = select_pipelines(args, &params, false)?
        .into_iter()
        .next()
        .expect("one pipeline selected");
    let m = if pipe.is_distributed() { sources } else { 1 };
    let fingerprint = tcp::fingerprint(&canonical_config(args, m)?);
    Ok(DistPlan {
        pipe,
        m,
        fingerprint,
        n,
        d,
    })
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args
        .flags
        .get("listen")
        .ok_or("serve needs --listen <addr>")?
        .clone();
    // Fail fast on inconsistent fault-tolerance flags before binding
    // the listener — and before the replicated-check dispatch, so
    // `serve --replicated-check --resume` is the same usage error as
    // `serve --resume` instead of silently dropping the flag.
    if !args.flags.contains_key("journal") {
        if args.flags.contains_key("resume") {
            return Err("--resume needs --journal <path>".into());
        }
        if args.get_u64("crash-after-commands", 0)? > 0 {
            return Err("--crash-after-commands needs --journal <path>".into());
        }
    }
    if args.flags.contains_key("replicated-check") {
        // The SPMD debug mode recomputes the full run on every process:
        // there is no journal to replay and no shard to re-home, so the
        // protocol-mode fault-tolerance flags are usage errors here.
        if args.flags.contains_key("journal") {
            return Err(
                "--journal needs the server-driven protocol mode (drop --replicated-check)".into(),
            );
        }
        if args.get_usize("replication", 1)? > 1 {
            return Err(
                "--replication needs the server-driven protocol mode (drop --replicated-check)"
                    .into(),
            );
        }
        return cmd_serve_replicated(args, &addr);
    }
    // Default: the server-driven protocol. This process never builds
    // the dataset — it owns the plan, the sources own their shards.
    let reactor = reactor_choice(args)?;
    let plan = prepare_dist_plan(args)?;
    let binding = EventServerBinding::bind(addr.as_str())
        .map_err(|e| e.to_string())?
        .with_reactor(reactor);
    println!(
        "listening on {} for {} source(s), pipeline {} [config {:#018x}, server-driven protocol]",
        binding.local_addr().map_err(|e| e.to_string())?,
        plan.m,
        plan.pipe.name(),
        plan.fingerprint
    );
    // A resumed run's journal may record replica promotions: those
    // origins' owners are dead and their rounds run through a host's
    // connection, so the accept loop must not wait for them.
    let absent = if args.flags.contains_key("resume") {
        let journal = args.flags.get("journal").expect("validated above");
        edge_kmeans::core::journal::absorbed_origins(Path::new(journal))
            .map_err(|e| e.to_string())?
    } else {
        Vec::new()
    };
    if !absent.is_empty() {
        println!(
            "resume: {} absorbed source(s) will not rejoin: {absent:?}",
            absent.len()
        );
    }
    let net = binding
        .accept_absent(plan.m, plan.fingerprint, &absent)
        .map_err(|e| e.to_string())?;
    println!(
        "all {} source(s) connected; driving the protocol ({} reactor)",
        plan.m - absent.len(),
        match net.reactor_kind() {
            ReactorKind::Epoll => "epoll",
            ReactorKind::Sleep => "sleep-poll",
        }
    );
    let (out, stats) = drive_accepted(args, &plan, net)?;
    let digest = RunDigest::new(&stats, &out.centers);
    println!(
        "{} complete: centers {}x{}, comm {:.3e}, summary {} pts",
        plan.pipe.name(),
        out.centers.rows(),
        out.centers.cols(),
        out.normalized_comm(plan.n, plan.d),
        out.summary_points
    );
    if let Some(rec) = &out.recovered {
        for (origin, host) in &rec.promoted {
            println!("recovered: source {origin} re-homed onto replica host {host}");
        }
        println!(
            "recovered: {} completed round(s) replayed onto replicas",
            rec.replayed_rounds
        );
    }
    if let Some(deg) = &out.degraded {
        for (i, reason) in &deg.lost_sources {
            println!("degraded: source {i} lost ({reason})");
        }
        println!(
            "degraded: {} of {} rows dropped, cost-ratio bound {:.6}",
            deg.rows_lost, deg.rows_total, deg.cost_ratio_bound
        );
    }
    if plan.pipe.params().replication > 1 {
        // The replica control-plane counters, one per line for scripted
        // assertions (scripts/distributed_e2e.sh `replica` suite); they
        // stay out of the classic ledgers and the digest.
        println!("replica promotions {}", stats.replica_promotions());
        println!("replica replayed-rounds {}", stats.replayed_rounds());
        println!("replica-bits {}", stats.replica_bits());
    }
    for i in 0..plan.m {
        println!("source {i} uplink-bits {}", stats.uplink_bits(i));
    }
    println!("total uplink-bits {}", out.uplink_bits);
    if plan.pipe.params().topology == Topology::Tree && plan.m > 1 {
        // The tree run's physical counters, one per line for scripted
        // assertions (scripts/distributed_e2e.sh `tree` suite).
        println!("tree merge-rounds {}", stats.max_merge_rounds());
        println!("tree relay-bits {}", stats.total_relay_bits());
        println!(
            "tree server-fold-bits {} over {} input(s)",
            stats.server_fold_bits(),
            stats.server_fold_inputs()
        );
    }
    println!(
        "digest {:#018x}: per-source counters verified across {} source(s), no replication",
        digest.centers_hash, plan.m
    );
    if let Some(path) = args.flags.get("centers-out") {
        write_centers(path, &out.centers)?;
        println!("centers saved to {path}");
    }
    Ok(())
}

/// Runs the driver over the accepted transport, optionally through the
/// write-ahead journal (`--journal`, `--resume`) and the crash injector
/// (`--crash-after-commands`). Returns the run plus the transport's
/// per-source statistics (the journal owns its own accounting so a
/// resumed run's counters cover the replayed rounds too).
fn drive_accepted(
    args: &Args,
    plan: &DistPlan,
    net: EventTcpServer,
) -> Result<(RunOutput, NetworkStats), String> {
    let resume = args.flags.contains_key("resume");
    let crash_after = args.get_u64("crash-after-commands", 0)?;
    // The routing layer re-homes a promoted origin's traffic onto its
    // replica host; with no promotions it is a pure pass-through, so
    // every protocol serve runs behind it. The journal sits *above*
    // routing: entries stay keyed by origin, and a resumed driver
    // rediscovers the routes by re-firing the journaled promotions.
    let mut routed = RoutingTransport::new(net);
    let Some(journal) = args.flags.get("journal") else {
        // cmd_serve rejected --resume / --crash-after-commands without
        // --journal before any socket was bound.
        let out = plan
            .pipe
            .run_driver(&mut routed)
            .map_err(|e| e.to_string())?;
        let stats = routed.stats().clone();
        return Ok((out, stats));
    };
    let path = Path::new(journal);
    let mut jnet = if resume {
        JournalingTransport::resume(routed, path, plan.fingerprint)
    } else {
        JournalingTransport::record(routed, path, plan.fingerprint)
    }
    .map_err(|e| e.to_string())?;
    if resume {
        println!(
            "resume: replayed {} journal record(s) from {journal}",
            jnet.replayed_entries()
        );
    }
    if crash_after > 0 {
        jnet = jnet.with_entry_hook(Box::new(move |n| {
            if n >= crash_after {
                eprintln!("injected crash after {n} journaled command(s)");
                std::process::exit(42);
            }
        }));
    }
    let out = plan.pipe.run_driver(&mut jnet).map_err(|e| e.to_string())?;
    let stats = jnet.stats().clone();
    Ok((out, stats))
}

/// The replicated SPMD debug fallback: every process recomputes the
/// full deterministic run and the transport verifies byte equality
/// frame by frame.
fn cmd_serve_replicated(args: &Args, addr: &str) -> Result<(), String> {
    let run = prepare_dist_run(args)?;
    let binding = TcpServerBinding::bind(addr).map_err(|e| e.to_string())?;
    println!(
        "listening on {} for {} source(s), pipeline {} [config {:#018x}, replicated check]",
        binding.local_addr().map_err(|e| e.to_string())?,
        run.m,
        run.pipe.name(),
        run.fingerprint
    );
    let mut net = binding
        .accept(run.m, run.fingerprint)
        .map_err(|e| e.to_string())?;
    println!("all {} source(s) connected; running", run.m);
    let out = run
        .pipe
        .run_shards(&run.parts, &mut net)
        .map_err(|e| e.to_string())?;
    let digest = RunDigest::new(net.stats(), &out.centers);
    net.finish(digest).map_err(|e| e.to_string())?;
    println!(
        "{} complete: centers {}x{}, comm {:.3e}, summary {} pts",
        run.pipe.name(),
        out.centers.rows(),
        out.centers.cols(),
        out.normalized_comm(run.n, run.d),
        out.summary_points
    );
    for i in 0..run.m {
        println!("source {i} uplink-bits {}", net.stats().uplink_bits(i));
    }
    println!("total uplink-bits {}", out.uplink_bits);
    println!(
        "digest {:#018x}: verified bit-identical across all {} process(es)",
        digest.centers_hash, run.m
    );
    Ok(())
}

fn cmd_source(args: &Args) -> Result<(), String> {
    let addr = args
        .flags
        .get("connect")
        .ok_or("source needs --connect <addr>")?
        .clone();
    args.flags
        .get("source-id")
        .ok_or("source needs --source-id <int>")?;
    // The reactor is the server's wakeup mechanism; a source only
    // validates the value so e2e scripts can hand both processes the
    // same flag set.
    reactor_choice(args)?;
    let id = args.get_usize("source-id", 0)?;
    let run = prepare_dist_run(args)?;
    if id >= run.m {
        return Err(format!(
            "--source-id {id} out of range for {} source(s)",
            run.m
        ));
    }
    if args.flags.contains_key("replicated-check") {
        let mut net = TcpSource::connect(
            addr.as_str(),
            id,
            run.m,
            run.fingerprint,
            Duration::from_secs(30),
        )
        .map_err(|e| e.to_string())?;
        let out = run
            .pipe
            .run_shards(&run.parts, &mut net)
            .map_err(|e| e.to_string())?;
        let digest = RunDigest::new(net.stats(), &out.centers);
        net.finish(digest).map_err(|e| e.to_string())?;
        println!(
            "source {id}: {} verified bit-identical with server \
             (own uplink-bits {}, digest {:#018x})",
            run.pipe.name(),
            net.stats().uplink_bits(id),
            digest.centers_hash
        );
        return Ok(());
    }
    // Default: protocol mode — keep this source's shard (plus the cold
    // replica shards its ring position assigns it) and answer the
    // server's commands.
    let replication = run.pipe.params().replication;
    let replicas: std::collections::BTreeMap<usize, Matrix> =
        edge_kmeans::core::params::replica_origins(id, run.m, replication)
            .into_iter()
            .map(|origin| (origin, run.parts[origin].clone()))
            .collect();
    let shard = run
        .parts
        .into_iter()
        .nth(id)
        .expect("source id within shard range");
    let reconnect = args.get_u64("reconnect", 0)?;
    let mut fail_after = args.get_u64("fail-after-commands", 0)?;
    let connect_window = Duration::from_secs(if reconnect > 0 { reconnect } else { 30 });
    // One executor for the process lifetime: across reconnects it keeps
    // its round counter and response cache, so a restarted driver's
    // replayed rounds are answered from the cache without recomputation.
    let mut executor = SourceExecutor::new(run.pipe.stages(), run.pipe.params(), id, run.m, shard)
        .with_replicas(replicas);
    let report = loop {
        // The connect retry backoff follows the run's deadline policy:
        // a tight --deadline-ms run probes faster than the default.
        let mut endpoint = EventTcpSource::connect_with_policy(
            addr.as_str(),
            id,
            run.m,
            run.fingerprint,
            connect_window,
            run.pipe.params().deadline,
        )
        .map_err(|e| e.to_string())?;
        let served = if fail_after > 0 {
            let mut failing = FailingEndpoint {
                inner: endpoint,
                countdown: &mut fail_after,
                source_id: id,
            };
            executor.serve(&mut failing)
        } else {
            executor.serve(&mut endpoint)
        };
        match served {
            Ok(report) => break report,
            Err(CoreError::Net(NetError::Transport { .. })) if reconnect > 0 => {
                eprintln!("source {id}: connection lost; reconnecting");
                continue;
            }
            Err(e) => return Err(e.to_string()),
        }
    };
    println!(
        "source {id}: {} done — sent {} uplink-bits, received {} downlink-bits \
         (digest {:#018x}, counters verified by the server)",
        run.pipe.name(),
        report.uplink_bits,
        report.downlink_bits,
        report.centers_hash
    );
    Ok(())
}

/// Fault injection for the CI suite: a source endpoint that serves a
/// fixed number of commands and then exits the whole process with code
/// 43 — the scripted stand-in for an edge device dying mid-stage. The
/// countdown lives outside the endpoint so it spans reconnects.
struct FailingEndpoint<'a, E: SourceEndpoint> {
    inner: E,
    countdown: &'a mut u64,
    source_id: usize,
}

impl<E: SourceEndpoint> SourceEndpoint for FailingEndpoint<'_, E> {
    fn recv_command(&mut self) -> Result<Command, NetError> {
        if *self.countdown == 0 {
            eprintln!(
                "source {}: injected fault — exiting mid-stage",
                self.source_id
            );
            std::process::exit(43);
        }
        *self.countdown -= 1;
        self.inner.recv_command()
    }

    fn send_response(&mut self, resp: Response) -> Result<(), NetError> {
        self.inner.send_response(resp)
    }

    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        self.inner.set_deadline(policy);
    }
}

fn cmd_qtopt(args: &Args) -> Result<(), String> {
    let data = build_dataset(args)?;
    let (n, d) = data.shape();
    let k = args.get_usize("k", 2)?;
    let y0 = args.get_f64("y0", 2.0)?;
    let weights = vec![1.0; n];
    let e = cost_lower_bound(&data, &weights, k, 0.1, args.get_u64("seed", 42)?)
        .map_err(|e| e.to_string())?;
    let optimizer = QtOptimizer {
        n,
        d,
        k,
        y0,
        delta0: 0.1,
        lower_bound_e: e.lower_bound.max(1e-12),
        diameter: 2.0 * (d as f64).sqrt(),
        max_norm: data.max_row_norm(),
    };
    let report = optimizer.optimize().map_err(|e| e.to_string())?;
    let best = report.best();
    println!("dataset {n} x {d}, k = {k}, Y0 = {y0}");
    println!("lower bound E = {:.6}", e.lower_bound);
    println!(
        "optimal configuration: s* = {} significant bits (epsilon = {:.4})",
        best.s,
        best.epsilon.unwrap_or(f64::NAN)
    );
    let feasible = report
        .candidates
        .iter()
        .filter(|c| c.epsilon.is_some())
        .count();
    println!("{feasible}/52 bit-widths feasible under the bound");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "run" => cmd_run(&args),
        "eval" => cmd_eval(&args),
        "sweep" => cmd_sweep(&args),
        "qtopt" => cmd_qtopt(&args),
        "serve" => cmd_serve(&args),
        "source" => cmd_source(&args),
        "help" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{HELP}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Args, String> {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_command_and_flags() {
        let a = args(&["run", "--pipeline", "fss", "--n", "500"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get_str("pipeline", "x"), "fss");
        assert_eq!(a.get_usize("n", 0).unwrap(), 500);
        assert_eq!(a.get_usize("d", 7).unwrap(), 7); // default
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(args(&["run", "--n"]).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = args(&["sweep", "--no-cache", "--n", "500"]).unwrap();
        assert_eq!(a.get_str("no-cache", "false"), "true");
        assert_eq!(a.get_usize("n", 0).unwrap(), 500);
        // Trailing boolean flag is fine too.
        let a = args(&["sweep", "--no-cache"]).unwrap();
        assert!(a.flags.contains_key("no-cache"));
    }

    #[test]
    fn double_command_is_an_error() {
        assert!(args(&["run", "sweep"]).is_err());
    }

    #[test]
    fn help_flag_short_circuits() {
        let a = args(&["run", "--help"]).unwrap();
        assert_eq!(a.command, "help");
    }

    #[test]
    fn bad_numbers_error() {
        let a = args(&["run", "--n", "abc"]).unwrap();
        assert!(a.get_usize("n", 0).is_err());
        let a = args(&["qtopt", "--y0", "x"]).unwrap();
        assert!(a.get_f64("y0", 1.0).is_err());
    }

    #[test]
    fn default_command_is_help() {
        let a = args(&[]).unwrap();
        assert_eq!(a.command, "help");
    }

    fn test_params() -> SummaryParams {
        SummaryParams::practical(2, 100, 10)
    }

    #[test]
    fn every_named_pipeline_resolves() {
        for name in PIPELINES {
            let pipe = resolve_named(name, &test_params()).unwrap();
            assert!(!pipe.name().is_empty(), "{name}");
        }
    }

    #[test]
    fn unknown_pipeline_lists_valid_names() {
        let err = resolve_named("jlfss", &test_params()).unwrap_err();
        assert!(err.contains("jlfss"));
        assert!(err.contains("jl-fss-jl"), "{err}");
        assert!(err.contains("--stages"), "{err}");
    }

    #[test]
    fn stages_flag_builds_composition() {
        let a = args(&["run", "--stages", "jl,fss,qt,jl"]).unwrap();
        let pipes = select_pipelines(&a, &test_params(), false).unwrap();
        assert_eq!(pipes.len(), 1);
        assert_eq!(pipes[0].name(), "JL+FSS+QT+JL");
        assert!(!pipes[0].is_distributed());
        let a = args(&["run", "--stages", "dispca,jl,disss"]).unwrap();
        let pipes = select_pipelines(&a, &test_params(), false).unwrap();
        assert!(pipes[0].is_distributed());
    }

    #[test]
    fn bad_stage_lists_are_rejected_with_vocabulary() {
        let a = args(&["run", "--stages", "jl,warp"]).unwrap();
        let err = select_pipelines(&a, &test_params(), false).unwrap_err();
        assert!(err.contains("warp"), "{err}");
        assert!(err.contains("dispca"), "{err}");
    }

    #[test]
    fn pipeline_and_stages_are_exclusive() {
        let a = args(&["run", "--pipeline", "fss", "--stages", "jl"]).unwrap();
        assert!(select_pipelines(&a, &test_params(), false)
            .unwrap_err()
            .contains("mutually exclusive"));
    }

    #[test]
    fn sweep_appends_extra_compositions() {
        let a = args(&["sweep", "--stages", "jl,fss;fss,jl,qt:6"]).unwrap();
        let pipes = select_pipelines(&a, &test_params(), true).unwrap();
        assert_eq!(pipes.len(), 9, "seven defaults + two extras");
        assert_eq!(pipes[7].name(), "JL+FSS");
        assert_eq!(pipes[8].name(), "FSS+JL+QT");
    }

    #[test]
    fn quantize_flag_reaches_stage_compositions() {
        // --quantize with --stages must arm a QT stage (before disss in
        // distributed lists), exactly like the named +QT variants.
        let q = RoundingQuantizer::new(8).unwrap();
        let p = test_params().with_quantizer(q);
        let pipe = composition_from("jl,fss", &p).unwrap();
        assert_eq!(pipe.name(), "JL+FSS+QT");
        let pipe = composition_from("dispca,disss", &p).unwrap();
        assert_eq!(pipe.name(), "disPCA+QT+disSS");
        // An explicit qt stage is not duplicated.
        let pipe = composition_from("jl,fss,qt:4", &p).unwrap();
        assert_eq!(pipe.name(), "JL+FSS+QT");
        assert_eq!(pipe.stages().len(), 3);
        // Without a quantizer nothing is inserted.
        let pipe = composition_from("jl,fss", &test_params()).unwrap();
        assert_eq!(pipe.stages().len(), 2);
    }

    #[test]
    fn stream_stages_flag_builds_sharded_composition() {
        let a = args(&["run", "--stages", "jl,stream,qt"]).unwrap();
        let pipes = select_pipelines(&a, &test_params(), false).unwrap();
        assert_eq!(pipes[0].name(), "JL+STREAM+QT");
        assert!(
            pipes[0].is_distributed(),
            "stream pipelines shard over --sources"
        );
        let a = args(&["run", "--stages", "stream:128,jl"]).unwrap();
        let pipes = select_pipelines(&a, &test_params(), false).unwrap();
        assert_eq!(pipes[0].name(), "STREAM+JL");
    }

    #[test]
    fn precision_leaf_and_thread_flags_reach_params() {
        let a = args(&[
            "run",
            "--precision",
            "f32",
            "--leaf-size",
            "300",
            "--n",
            "100",
            "--d",
            "10",
        ])
        .unwrap();
        let p = build_params(&a, 100, 10).unwrap();
        assert_eq!(p.precision, Precision::F32);
        assert_eq!(p.stream_leaf_size, 300);
        let a = args(&["run", "--precision", "f16"]).unwrap();
        assert!(build_params(&a, 100, 10).unwrap_err().contains("f16"));
        // 'full' is not an alias — it would fingerprint differently from
        // 'f64' while producing identical bits.
        let a = args(&["run", "--precision", "full"]).unwrap();
        assert!(build_params(&a, 100, 10).is_err());
        // --leaf-size must be positive, like the stream:<leaf> token.
        let a = args(&["run", "--leaf-size", "0"]).unwrap();
        assert!(build_params(&a, 100, 10)
            .unwrap_err()
            .contains("--leaf-size"));
        // Default: full precision, derived leaf size.
        let a = args(&["run"]).unwrap();
        let p = build_params(&a, 100, 10).unwrap();
        assert_eq!(p.precision, Precision::Full);
        assert!(p.stream_leaf_size > 0);
    }

    #[test]
    fn compute_flag_reaches_params() {
        let a = args(&["run", "--compute", "f32"]).unwrap();
        let p = build_params(&a, 100, 10).unwrap();
        assert_eq!(p.compute, Compute::F32);
        // f64 is both the default and an explicit spelling.
        let a = args(&["run"]).unwrap();
        assert_eq!(build_params(&a, 100, 10).unwrap().compute, Compute::F64);
        let a = args(&["run", "--compute", "f64"]).unwrap();
        assert_eq!(build_params(&a, 100, 10).unwrap().compute, Compute::F64);
        let a = args(&["run", "--compute", "f16"]).unwrap();
        assert!(build_params(&a, 100, 10).unwrap_err().contains("f16"));
    }

    #[test]
    fn fingerprint_covers_precision_and_leaf_size() {
        let base = args(&["serve", "--n", "500"]).unwrap();
        let fp = |a: &Args| tcp::fingerprint(&canonical_config(a, 2).unwrap());
        let f32p = args(&["serve", "--n", "500", "--precision", "f32"]).unwrap();
        assert_ne!(fp(&base), fp(&f32p));
        let leaf = args(&["serve", "--n", "500", "--leaf-size", "64"]).unwrap();
        assert_ne!(fp(&base), fp(&leaf));
        // --compute shapes every distance result, so both ends must agree.
        let f32c = args(&["serve", "--n", "500", "--compute", "f32"]).unwrap();
        assert_ne!(fp(&base), fp(&f32c));
        assert_ne!(fp(&f32p), fp(&f32c));
        // --threads does not shape the bits, so it stays out.
        let threads = args(&["serve", "--n", "500", "--threads", "2"]).unwrap();
        assert_eq!(fp(&base), fp(&threads));
    }

    #[test]
    fn topology_flag_reaches_params_and_fingerprint() {
        let a = args(&["run"]).unwrap();
        assert_eq!(build_params(&a, 100, 10).unwrap().topology, Topology::Star);
        let a = args(&["run", "--topology", "tree"]).unwrap();
        assert_eq!(build_params(&a, 100, 10).unwrap().topology, Topology::Tree);
        let a = args(&["run", "--topology", "ring"]).unwrap();
        assert!(build_params(&a, 100, 10).unwrap_err().contains("ring"));
        // Both ends must agree on the topology: a tree server would
        // issue MergeWith rounds a star source rejects, so it is part
        // of the handshake (and journal-resume) fingerprint.
        let fp = |a: &Args| tcp::fingerprint(&canonical_config(a, 3).unwrap());
        let star = args(&["serve", "--n", "500"]).unwrap();
        let tree = args(&["serve", "--n", "500", "--topology", "tree"]).unwrap();
        assert_ne!(fp(&star), fp(&tree));
        let explicit = args(&["serve", "--n", "500", "--topology", "star"]).unwrap();
        assert_eq!(fp(&star), fp(&explicit));
    }

    #[test]
    fn sweep_rejects_cache_tier_flags_with_no_cache() {
        // --no-cache plus a cache-shaping flag used to silently ignore
        // the latter; it is a usage error, rejected before any work.
        let a = args(&["sweep", "--no-cache", "--cache-budget", "1000"]).unwrap();
        let err = cmd_sweep(&a).unwrap_err();
        assert!(err.contains("--cache-budget"), "{err}");
        assert!(err.contains("--no-cache"), "{err}");
        let a = args(&["sweep", "--no-cache", "--cache-dir", "/tmp/x"]).unwrap();
        let err = cmd_sweep(&a).unwrap_err();
        assert!(err.contains("--cache-dir"), "{err}");
        assert!(err.contains("--no-cache"), "{err}");
    }

    #[test]
    fn serve_and_source_require_their_flags() {
        assert!(cmd_serve(&args(&["serve"]).unwrap())
            .unwrap_err()
            .contains("--listen"));
        assert!(cmd_source(&args(&["source"]).unwrap())
            .unwrap_err()
            .contains("--connect"));
        let a = args(&["source", "--connect", "127.0.0.1:1"]).unwrap();
        assert!(cmd_source(&a).unwrap_err().contains("--source-id"));
    }

    #[test]
    fn fingerprint_covers_run_shaping_flags_only() {
        let base = args(&["serve", "--n", "500", "--seed", "7"]).unwrap();
        let fp = |a: &Args| tcp::fingerprint(&canonical_config(a, 3).unwrap());
        // A different seed changes the fingerprint…
        let other = args(&["serve", "--n", "500", "--seed", "8"]).unwrap();
        assert_ne!(fp(&base), fp(&other));
        // …but --parallel does not (results are bit-identical either way).
        let par = args(&["serve", "--n", "500", "--seed", "7", "--parallel", "off"]).unwrap();
        assert_eq!(fp(&base), fp(&par));
    }

    #[test]
    fn dist_run_shards_follow_pipeline_kind() {
        let a = args(&[
            "serve",
            "--pipeline",
            "bklw",
            "--sources",
            "3",
            "--n",
            "90",
            "--d",
            "16",
        ])
        .unwrap();
        let run = prepare_dist_run(&a).unwrap();
        assert_eq!(run.m, 3);
        assert_eq!(run.parts.len(), 3);
        let a = args(&[
            "serve",
            "--pipeline",
            "fss",
            "--sources",
            "3",
            "--n",
            "90",
            "--d",
            "16",
        ])
        .unwrap();
        let run = prepare_dist_run(&a).unwrap();
        assert_eq!((run.m, run.parts.len()), (1, 1));
        assert_eq!(run.parts[0].rows(), 90);
    }

    #[test]
    fn parallel_flag_parses() {
        for (v, ok) in [("on", true), ("off", true), ("1", true), ("maybe", false)] {
            let a = args(&["run", "--parallel", v]).unwrap();
            assert_eq!(
                select_pipelines(&a, &test_params(), false).is_ok(),
                ok,
                "{v}"
            );
        }
    }

    #[test]
    fn resume_is_boolean_and_keeps_the_next_flag() {
        // --resume must not swallow the flag that follows it.
        let a = args(&["serve", "--resume", "--journal", "run.journal"]).unwrap();
        assert!(a.flags.contains_key("resume"));
        assert_eq!(a.flags.get("journal").unwrap(), "run.journal");
    }

    #[test]
    fn deadline_flag_reaches_params_and_rejects_zero() {
        let a = args(&["serve", "--deadline-ms", "250"]).unwrap();
        let p = build_params(&a, 100, 10).unwrap();
        assert_eq!(p.deadline.command, Duration::from_millis(250));
        assert_eq!(p.deadline.io, Duration::from_millis(250));
        let a = args(&["serve", "--deadline-ms", "0"]).unwrap();
        assert!(build_params(&a, 100, 10)
            .unwrap_err()
            .contains("--deadline-ms"));
    }

    #[test]
    fn reactor_flag_parses_and_stays_out_of_the_fingerprint() {
        assert!(matches!(
            reactor_choice(&args(&["serve"]).unwrap()),
            Ok(ReactorChoice::Epoll)
        ));
        assert!(matches!(
            reactor_choice(&args(&["serve", "--reactor", "sleep"]).unwrap()),
            Ok(ReactorChoice::Sleep)
        ));
        assert!(matches!(
            reactor_choice(&args(&["source", "--reactor", "epoll"]).unwrap()),
            Ok(ReactorChoice::Epoll)
        ));
        let err = reactor_choice(&args(&["serve", "--reactor", "uring"]).unwrap()).unwrap_err();
        assert!(err.contains("--reactor expects epoll|sleep"), "{err}");
        assert!(err.contains("uring"), "{err}");
        // The reactor schedules wakeups, never the bits: an epoll
        // server must handshake with a source launched before the flag
        // existed, so it stays out of the fingerprint.
        let fp = |a: &Args| tcp::fingerprint(&canonical_config(a, 3).unwrap());
        let base = args(&["serve", "--n", "500"]).unwrap();
        let sleep = args(&["serve", "--n", "500", "--reactor", "sleep"]).unwrap();
        assert_eq!(fp(&base), fp(&sleep));
    }

    #[test]
    fn fault_tolerance_flags_stay_out_of_the_fingerprint() {
        // The journal, deadlines, and output paths shape recovery, not
        // the run's bits — a resumed driver must present the same
        // handshake fingerprint as the one that crashed.
        let base = args(&["serve", "--n", "500"]).unwrap();
        let fp = |a: &Args| tcp::fingerprint(&canonical_config(a, 3).unwrap());
        let faulty = args(&[
            "serve",
            "--n",
            "500",
            "--deadline-ms",
            "2000",
            "--journal",
            "run.journal",
            "--resume",
            "--centers-out",
            "c.txt",
        ])
        .unwrap();
        assert_eq!(fp(&base), fp(&faulty));
    }

    #[test]
    fn centers_roundtrip_is_bit_exact() {
        let m = Matrix::from_vec(
            2,
            3,
            vec![1.5, -0.25, 1.0e-300, f64::MIN_POSITIVE, -0.0, 3.25],
        );
        let path = std::env::temp_dir().join(format!("ekm-centers-{}.txt", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        write_centers(&path, &m).unwrap();
        let back = read_centers(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.shape(), (2, 3));
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn eval_requires_a_centers_file() {
        assert!(cmd_eval(&args(&["eval"]).unwrap())
            .unwrap_err()
            .contains("--centers"));
    }

    #[test]
    fn resume_and_crash_injection_require_a_journal() {
        let a = args(&["serve", "--listen", "127.0.0.1:0", "--resume"]).unwrap();
        assert!(cmd_serve(&a).unwrap_err().contains("--journal"));
        let a = args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--crash-after-commands",
            "3",
        ])
        .unwrap();
        assert!(cmd_serve(&a).unwrap_err().contains("--journal"));
    }

    #[test]
    fn resume_without_journal_fails_fast_under_replicated_check_too() {
        // The --replicated-check dispatch used to return before the
        // fault-tolerance flag validation, so `serve --replicated-check
        // --resume` silently dropped --resume and ran a fresh replicated
        // run. It is the same usage error as plain `serve --resume`,
        // rejected before any listener binds or dataset builds.
        let a = args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--replicated-check",
            "--resume",
        ])
        .unwrap();
        let err = cmd_serve(&a).unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        assert!(err.contains("--journal"), "{err}");
        // And the flags replicated-check mode cannot honor at all are
        // rejected, not ignored.
        let a = args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--replicated-check",
            "--journal",
            "run.journal",
        ])
        .unwrap();
        let err = cmd_serve(&a).unwrap_err();
        assert!(err.contains("--replicated-check"), "{err}");
        let a = args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--replicated-check",
            "--replication",
            "2",
        ])
        .unwrap();
        let err = cmd_serve(&a).unwrap_err();
        assert!(err.contains("--replication"), "{err}");
        assert!(err.contains("--replicated-check"), "{err}");
    }

    #[test]
    fn replication_flag_reaches_params_and_rejects_zero() {
        let a = args(&["serve", "--replication", "2"]).unwrap();
        assert_eq!(build_params(&a, 100, 10).unwrap().replication, 2);
        // Default: no replicas beyond the owner.
        let a = args(&["serve"]).unwrap();
        assert_eq!(build_params(&a, 100, 10).unwrap().replication, 1);
        let a = args(&["serve", "--replication", "0"]).unwrap();
        assert!(build_params(&a, 100, 10)
            .unwrap_err()
            .contains("--replication"));
    }

    #[test]
    fn replication_is_part_of_the_fingerprint() {
        // The replica ring shapes which process must hold which cold
        // shard, so both ends have to agree on r before any data moves.
        let fp = |a: &Args| tcp::fingerprint(&canonical_config(a, 3).unwrap());
        let base = args(&["serve", "--n", "500"]).unwrap();
        let replicated = args(&["serve", "--n", "500", "--replication", "2"]).unwrap();
        assert_ne!(fp(&base), fp(&replicated));
        let explicit = args(&["serve", "--n", "500", "--replication", "1"]).unwrap();
        assert_eq!(fp(&base), fp(&explicit));
    }
}
