#!/usr/bin/env bash
# End-to-end distributed smoke test: launches `ekm serve` plus N real
# `ekm source` processes over loopback TCP and asserts that every
# process exits cleanly and that the run's accounting holds. Run
# locally or from the CI `distributed-e2e` matrix:
#
#   cargo build --release && scripts/distributed_e2e.sh [core|streaming|non-replicated|faults|tree|replica|all]
#
# `core` and `streaming` run in the replicated SPMD debug mode
# (`--replicated-check`): every process recomputes the full run and the
# transport verifies byte equality frame by frame — the strongest
# equivalence proof. `non-replicated` runs the default server-driven
# protocol — sources hold only their shard, the server drives the plan
# over one event-driven thread — and asserts the uplink bits equal the
# in-process simulation's (`ekm run`) while no divergence-check
# machinery ran. `faults` is the fault-injection suite: it kills a
# source mid-stage and asserts the degraded run stays within the
# documented cost-ratio bound, then kills the server mid-round and
# asserts `--resume` replays the journal to bit-identical centers and
# per-source counters. `tree` runs the same configuration under
# `--topology star` and `--topology tree` and asserts the tree leg is a
# pure placement change: identical digest, centers, and per-source
# uplink ledger, with at most ceil(log2 s)+1 merge rounds and a
# server-side fold ingest strictly below the star run's uplink.
# `replica` is the shard-replication failover suite: a killed owner
# must be re-homed onto its ring replica with results bit-identical to
# a never-failed twin, a dead owner plus dead replica must degrade
# cleanly, and a server crash mid-promotion must `--resume` to the same
# bit-identical end state. The default `all` runs everything.
set -euo pipefail

SUITE=${1:-all}
BIN=${EKM_BIN:-target/release/ekm}
PORT=${EKM_E2E_PORT:-17071}
ADDR="127.0.0.1:${PORT}"
# Hard per-process deadline: `ekm serve` blocks in accept() with no
# timeout until every source has handshaked, so a source that dies
# before connecting would otherwise hang the round (and the CI job).
ROUND_TIMEOUT=${EKM_E2E_TIMEOUT:-180}
# CI sets EKM_E2E_LOGDIR to a path it uploads as an artifact on
# failure; when unset the logs live in a scratch dir removed on exit.
if [[ -n "${EKM_E2E_LOGDIR:-}" ]]; then
    LOGDIR="$EKM_E2E_LOGDIR"
    mkdir -p "$LOGDIR"
else
    LOGDIR=$(mktemp -d)
    trap 'rm -rf "$LOGDIR"' EXIT
fi

# run_round <label> <mode> <sources> <flags...>
#   mode: "replicated" adds --replicated-check and asserts the digest
#   verification lines; "protocol" runs the server-driven default and
#   asserts the accounting lines plus bit-equality with `ekm run`.
run_round() {
    local label=$1
    shift
    local mode=$1
    shift
    local sources=$1
    shift
    local common=("$@")
    local mode_flags=()
    if [[ "$mode" == "replicated" ]]; then
        mode_flags=(--replicated-check)
    fi

    echo "=== ${label} [${mode}]: ${common[*]} (${sources} sources) ==="
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" --sources "$sources" "${mode_flags[@]}" \
        "${common[@]}" >"$LOGDIR/serve.log" 2>&1 &
    local serve_pid=$!

    local src_pids=()
    for ((i = 0; i < sources; i++)); do
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" source --connect "$ADDR" --source-id "$i" --sources "$sources" \
            "${mode_flags[@]}" "${common[@]}" >"$LOGDIR/source-$i.log" 2>&1 &
        src_pids+=($!)
    done

    local failed=0
    for ((i = 0; i < sources; i++)); do
        if ! wait "${src_pids[$i]}"; then
            echo "FAIL: source $i exited nonzero"
            failed=1
        fi
    done
    # A dead source leaves serve blocked in accept(); don't wait for it.
    if [[ $failed -ne 0 ]]; then
        kill "$serve_pid" 2>/dev/null || true
    fi
    if ! wait "$serve_pid"; then
        echo "FAIL: serve exited nonzero"
        failed=1
    fi

    sed 's/^/  serve  | /' "$LOGDIR/serve.log"
    for ((i = 0; i < sources; i++)); do
        sed "s/^/  src $i  | /" "$LOGDIR/source-$i.log"
    done
    if [[ $failed -ne 0 ]]; then
        exit 1
    fi

    # The run must have transmitted real bits…
    local bits
    bits=$(sed -n 's/^total uplink-bits \([0-9]*\)$/\1/p' "$LOGDIR/serve.log")
    if [[ -z "$bits" || "$bits" -eq 0 ]]; then
        echo "FAIL: server reported no uplink bits"
        exit 1
    fi

    if [[ "$mode" == "replicated" ]]; then
        # …and every process must have verified the shared digest.
        if ! grep -q "verified bit-identical" "$LOGDIR/serve.log"; then
            echo "FAIL: server did not verify the run digest"
            exit 1
        fi
        for ((i = 0; i < sources; i++)); do
            if ! grep -q "verified bit-identical" "$LOGDIR/source-$i.log"; then
                echo "FAIL: source $i did not verify the run digest"
                exit 1
            fi
        done
    else
        # …the server must have driven the protocol without any
        # replication or divergence-check machinery…
        if ! grep -q "server-driven protocol" "$LOGDIR/serve.log"; then
            echo "FAIL: server did not run the server-driven protocol"
            exit 1
        fi
        if grep -qi "replicated\|bit-identical across" "$LOGDIR/serve.log"; then
            echo "FAIL: divergence-check machinery ran in protocol mode"
            exit 1
        fi
        if ! grep -q "per-source counters verified" "$LOGDIR/serve.log"; then
            echo "FAIL: server did not verify the per-source counters"
            exit 1
        fi
        for ((i = 0; i < sources; i++)); do
            if ! grep -q "counters verified by the server" "$LOGDIR/source-$i.log"; then
                echo "FAIL: source $i did not complete the protocol"
                exit 1
            fi
        done
        # …and the bits on the wire must equal the in-process
        # simulation's for the same configuration.
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" run --sources "$sources" "${common[@]}" \
            >"$LOGDIR/run.log" 2>&1
        local sim_bits
        sim_bits=$(sed -n 's/^total uplink-bits \([0-9]*\)$/\1/p' "$LOGDIR/run.log")
        if [[ "$bits" != "$sim_bits" ]]; then
            echo "FAIL: protocol uplink ${bits} bits != simulation ${sim_bits} bits"
            exit 1
        fi
        echo "OK: protocol uplink matches the simulation (${bits} bits)"
    fi
    echo "OK: ${label} transmitted ${bits} uplink bits"
}

# core: a named distributed pipeline (Algorithm 4), a quantized
# arbitrary --stages composition, and a centralized pipeline over a
# single remote source — all in the replicated debug mode, which proves
# byte equality frame by frame.
if [[ "$SUITE" == "core" || "$SUITE" == "all" ]]; then
    run_round "jl-bklw" replicated 3 \
        --pipeline jl-bklw --dataset mixture --n 600 --d 40 --k 2 --seed 7
    run_round "stages" replicated 2 \
        --stages dispca,jl,qt:8,disss --dataset mixture --n 400 --d 30 --k 2 --seed 11
    run_round "centralized" replicated 1 \
        --pipeline jl-fss-jl --dataset mnist-like --n 500 --d 196 --k 2 --seed 5

    # reactor: the epoll readiness backend must be a pure scheduling
    # change. The same protocol configuration runs once per --reactor;
    # the legs must agree bit for bit on the digest, the saved centers,
    # and the classic per-source ledger — how the server waits for a
    # frame can never shape what the frame computes.
    RXSOURCES=3
    RXCOMMON=(--dataset mixture --n 600 --d 40 --k 2 --stages dispca,disss --seed 23)

    # run_reactor_leg <reactor>: one full serve + sources round with
    # --reactor, keeping the logs apart so the legs can be compared.
    run_reactor_leg() {
        local rx=$1
        echo "=== reactor-${rx} [protocol]: ${RXCOMMON[*]} (${RXSOURCES} sources, --reactor ${rx}) ==="
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" serve --listen "$ADDR" --sources "$RXSOURCES" "${RXCOMMON[@]}" \
            --reactor "$rx" --centers-out "$LOGDIR/reactor-$rx-centers.txt" \
            >"$LOGDIR/reactor-$rx-serve.log" 2>&1 &
        local serve_pid=$!
        local src_pids=()
        for ((i = 0; i < RXSOURCES; i++)); do
            timeout --kill-after=10 "$ROUND_TIMEOUT" \
                "$BIN" source --connect "$ADDR" --source-id "$i" --sources "$RXSOURCES" \
                "${RXCOMMON[@]}" --reactor "$rx" >"$LOGDIR/reactor-$rx-source-$i.log" 2>&1 &
            src_pids+=($!)
        done
        local failed=0
        for ((i = 0; i < RXSOURCES; i++)); do
            if ! wait "${src_pids[$i]}"; then
                echo "FAIL: reactor-${rx} source $i exited nonzero"
                failed=1
            fi
        done
        if [[ $failed -ne 0 ]]; then
            kill "$serve_pid" 2>/dev/null || true
        fi
        if ! wait "$serve_pid"; then
            echo "FAIL: reactor-${rx} serve exited nonzero"
            failed=1
        fi
        sed "s/^/  $rx | /" "$LOGDIR/reactor-$rx-serve.log"
        if [[ $failed -ne 0 ]]; then
            for ((i = 0; i < RXSOURCES; i++)); do
                sed "s/^/  src $i | /" "$LOGDIR/reactor-$rx-source-$i.log"
            done
            exit 1
        fi
    }

    run_reactor_leg sleep
    run_reactor_leg epoll

    # The sleep leg must actually have exercised the fallback path; the
    # epoll leg normally engages epoll, but a locked-down host may fall
    # back — that is fine, the equivalence assertions below still bite.
    grep -q "driving the protocol (sleep-poll reactor)" "$LOGDIR/reactor-sleep-serve.log" \
        || { echo "FAIL: the sleep leg did not engage the sleep-poll reactor"; exit 1; }
    if ! grep -q "driving the protocol (epoll reactor)" "$LOGDIR/reactor-epoll-serve.log"; then
        echo "note: epoll unavailable on this host; the epoll leg ran on the sleep fallback"
    fi

    sleep_bits=$(sed -n 's/^total uplink-bits \([0-9]*\)$/\1/p' "$LOGDIR/reactor-sleep-serve.log")
    epoll_bits=$(sed -n 's/^total uplink-bits \([0-9]*\)$/\1/p' "$LOGDIR/reactor-epoll-serve.log")
    [[ -n "$sleep_bits" && "$sleep_bits" -gt 0 ]] \
        || { echo "FAIL: the sleep leg reported no uplink bits"; exit 1; }
    [[ "$epoll_bits" == "$sleep_bits" ]] \
        || { echo "FAIL: epoll uplink ${epoll_bits} bits != sleep ${sleep_bits} bits"; exit 1; }
    sleep_digest=$(sed -n 's/^digest \(0x[0-9a-f]*\):.*/\1/p' "$LOGDIR/reactor-sleep-serve.log")
    epoll_digest=$(sed -n 's/^digest \(0x[0-9a-f]*\):.*/\1/p' "$LOGDIR/reactor-epoll-serve.log")
    [[ -n "$sleep_digest" && "$epoll_digest" == "$sleep_digest" ]] \
        || { echo "FAIL: epoll digest ${epoll_digest} != sleep ${sleep_digest}"; exit 1; }
    cmp -s "$LOGDIR/reactor-sleep-centers.txt" "$LOGDIR/reactor-epoll-centers.txt" \
        || { echo "FAIL: epoll centers differ from the sleep leg's"; exit 1; }
    grep '^source .* uplink-bits' "$LOGDIR/reactor-sleep-serve.log" | sort >"$LOGDIR/bits-rx-sleep.txt"
    grep '^source .* uplink-bits' "$LOGDIR/reactor-epoll-serve.log" | sort >"$LOGDIR/bits-rx-epoll.txt"
    cmp -s "$LOGDIR/bits-rx-sleep.txt" "$LOGDIR/bits-rx-epoll.txt" \
        || { echo "FAIL: per-source ledgers differ between the reactors"; \
             diff "$LOGDIR/bits-rx-sleep.txt" "$LOGDIR/bits-rx-epoll.txt" || true; exit 1; }
    echo "OK: epoll matched sleep bit for bit (digest $epoll_digest, $epoll_bits uplink bits)"
fi

# streaming: per-source merge-and-reduce summaries across real
# processes — composed with DR/QT, with an explicit leaf size, and with
# the F32 auxiliary-payload precision.
if [[ "$SUITE" == "streaming" || "$SUITE" == "all" ]]; then
    run_round "stream" replicated 3 \
        --stages jl,stream,qt:8 --dataset mixture --n 900 --d 40 --k 2 --seed 13
    run_round "stream-leaf" replicated 2 \
        --stages stream,jl --leaf-size 128 --dataset mnist-like --n 600 --d 196 --k 2 --seed 17
    run_round "stream-f32" replicated 2 \
        --stages jl,stream --precision f32 --dataset mixture --n 500 --d 30 --k 2 --seed 19
fi

# non-replicated: the server-driven protocol across real processes.
# Sources hold only their shard; the round asserts the uplink bits
# match the in-process simulation and that no divergence checks ran.
if [[ "$SUITE" == "non-replicated" || "$SUITE" == "all" ]]; then
    run_round "proto-jl-bklw" protocol 3 \
        --pipeline jl-bklw --dataset mixture --n 600 --d 40 --k 2 --seed 7
    run_round "proto-stages" protocol 2 \
        --stages dispca,jl,qt:8,disss --dataset mixture --n 400 --d 30 --k 2 --seed 11
    run_round "proto-stream" protocol 3 \
        --stages jl,stream,qt:8 --dataset mixture --n 900 --d 40 --k 2 --seed 13
    run_round "proto-centralized" protocol 1 \
        --pipeline jl-fss-jl --dataset mnist-like --n 500 --d 196 --k 2 --seed 5
fi

# faults: the fault-injection suite over the server-driven protocol.
# Round A kills one source mid-stage and asserts the run degrades onto
# the survivors within the paper's (1+eps)/(1-frac_lost) cost-ratio
# bound. Round B kills the *server* mid-round and asserts a restarted
# `serve --resume` replays its journal to centers and per-source
# counters bit-identical to a clean twin's. The measurements land in
# faults.json (schema ekm-fault-suite/v1), validated by the shared
# checker in scripts/bench_perf.sh.
if [[ "$SUITE" == "faults" || "$SUITE" == "all" ]]; then
    FCOMMON=(--dataset mixture --n 600 --d 40 --k 2 --stages dispca,disss --seed 9 --sources 3)

    echo "=== fault-degrade [protocol]: ${FCOMMON[*]} (source 2 killed mid-stage) ==="
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" "${FCOMMON[@]}" --deadline-ms 5000 \
        --centers-out "$LOGDIR/degraded-centers.txt" >"$LOGDIR/fault-serve.log" 2>&1 &
    serve_pid=$!
    src_pids=()
    for i in 0 1 2; do
        flags=()
        # Source 2 serves two commands, then exits 43 mid-stage — the
        # scripted stand-in for a dead edge device.
        [[ $i == 2 ]] && flags=(--fail-after-commands 2)
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" source --connect "$ADDR" --source-id "$i" "${FCOMMON[@]}" \
            "${flags[@]}" >"$LOGDIR/fault-source-$i.log" 2>&1 &
        src_pids+=($!)
    done
    for i in 0 1; do
        wait "${src_pids[$i]}" || { echo "FAIL: surviving source $i exited nonzero"; exit 1; }
    done
    if wait "${src_pids[2]}"; then
        echo "FAIL: the killed source exited zero — the fault never fired"
        exit 1
    fi
    wait "$serve_pid" || { echo "FAIL: serve did not survive the lost source"; exit 1; }
    sed 's/^/  serve  | /' "$LOGDIR/fault-serve.log"
    grep -q "degraded: source 2 lost" "$LOGDIR/fault-serve.log" \
        || { echo "FAIL: serve did not report the lost source"; exit 1; }
    grep -q "rows dropped, cost-ratio bound" "$LOGDIR/fault-serve.log" \
        || { echo "FAIL: serve did not report the degradation bound"; exit 1; }

    # Clean twin via the in-process simulation (bit-identical to the
    # protocol for the same flags), then score both center sets on the
    # full dataset and hold the ratio to the documented bound.
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" run "${FCOMMON[@]}" --centers-out "$LOGDIR/clean-centers.txt" \
        >"$LOGDIR/fault-twin.log" 2>&1 \
        || { echo "FAIL: clean twin run failed"; exit 1; }
    degraded_cost=$("$BIN" eval "${FCOMMON[@]}" --centers "$LOGDIR/degraded-centers.txt" \
        | sed -n 's/^cost //p')
    clean_cost=$("$BIN" eval "${FCOMMON[@]}" --centers "$LOGDIR/clean-centers.txt" \
        | sed -n 's/^cost //p')
    bound=$(sed -n 's/.*rows dropped, cost-ratio bound //p' "$LOGDIR/fault-serve.log")
    rows_lost=$(sed -n 's/^degraded: \([0-9]*\) of [0-9]* rows dropped.*/\1/p' "$LOGDIR/fault-serve.log")
    rows_total=$(sed -n 's/^degraded: [0-9]* of \([0-9]*\) rows dropped.*/\1/p' "$LOGDIR/fault-serve.log")
    ratio=$(python3 -c "print($degraded_cost / $clean_cost)")
    python3 -c "import sys; sys.exit(0 if 0 < $ratio <= $bound else 1)" \
        || { echo "FAIL: degraded cost ratio $ratio exceeds the bound $bound"; exit 1; }
    echo "OK: degraded run within the bound (cost ratio $ratio <= $bound)"

    echo "=== fault-resume [protocol]: ${FCOMMON[*]} (server killed mid-round) ==="
    JOURNAL="$LOGDIR/run.journal"
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" "${FCOMMON[@]}" --journal "$JOURNAL" \
        --crash-after-commands 5 >"$LOGDIR/crash-serve1.log" 2>&1 &
    serve_pid=$!
    src_pids=()
    for i in 0 1 2; do
        # The sources survive the server crash: they keep reconnecting
        # for up to 120 s and answer replayed rounds from their caches.
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" source --connect "$ADDR" --source-id "$i" "${FCOMMON[@]}" \
            --reconnect 120 >"$LOGDIR/crash-source-$i.log" 2>&1 &
        src_pids+=($!)
    done
    if wait "$serve_pid"; then
        echo "FAIL: the first serve exited zero — the crash never fired"
        exit 1
    fi
    resume_start=$(date +%s%3N)
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" "${FCOMMON[@]}" --journal "$JOURNAL" --resume \
        --centers-out "$LOGDIR/resumed-centers.txt" >"$LOGDIR/crash-serve2.log" 2>&1 \
        || { echo "FAIL: the resumed serve failed"; sed 's/^/  serve2 | /' "$LOGDIR/crash-serve2.log"; exit 1; }
    resume_ms=$(( $(date +%s%3N) - resume_start ))
    for i in 0 1 2; do
        wait "${src_pids[$i]}" || { echo "FAIL: source $i did not survive the server crash"; exit 1; }
    done
    sed 's/^/  serve2 | /' "$LOGDIR/crash-serve2.log"
    grep -q "resume: replayed" "$LOGDIR/crash-serve2.log" \
        || { echo "FAIL: the resumed serve replayed nothing"; exit 1; }
    replayed=$(sed -n 's/^resume: replayed \([0-9]*\) journal record(s).*/\1/p' "$LOGDIR/crash-serve2.log")

    # Clean twin over fresh processes on a fresh port: the resumed run
    # must be indistinguishable from one that never crashed.
    TWIN_ADDR="127.0.0.1:$((PORT + 1))"
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$TWIN_ADDR" "${FCOMMON[@]}" \
        --centers-out "$LOGDIR/twin-centers.txt" >"$LOGDIR/crash-serve3.log" 2>&1 &
    serve_pid=$!
    for i in 0 1 2; do
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" source --connect "$TWIN_ADDR" --source-id "$i" "${FCOMMON[@]}" \
            >"$LOGDIR/twin-source-$i.log" 2>&1 &
    done
    wait "$serve_pid" || { echo "FAIL: the clean twin serve failed"; exit 1; }
    cmp -s "$LOGDIR/resumed-centers.txt" "$LOGDIR/twin-centers.txt" \
        || { echo "FAIL: resumed centers differ from the clean twin's"; exit 1; }
    grep "uplink-bits" "$LOGDIR/crash-serve2.log" | sort >"$LOGDIR/bits-resumed.txt"
    grep "uplink-bits" "$LOGDIR/crash-serve3.log" | sort >"$LOGDIR/bits-twin.txt"
    cmp -s "$LOGDIR/bits-resumed.txt" "$LOGDIR/bits-twin.txt" \
        || { echo "FAIL: resumed per-source counters differ from the clean twin's"; \
             diff "$LOGDIR/bits-resumed.txt" "$LOGDIR/bits-twin.txt" || true; exit 1; }
    echo "OK: resume replayed $replayed record(s) to bit-identical centers and counters (${resume_ms} ms)"

    # Record the suite's measurements and hold them to the shared
    # schema checker — the same validator CI runs on bench documents.
    python3 - "$LOGDIR/faults.json" <<EOF
import json, sys
doc = {
    "schema": "ekm-fault-suite/v1",
    "degraded": {
        "cost_ratio": $ratio,
        "cost_ratio_bound": $bound,
        "rows_lost": $rows_lost,
        "rows_total": $rows_total,
    },
    "resume": {
        "replayed_records": $replayed,
        "resume_wall_ms": $resume_ms,
        "centers_bit_identical": True,
    },
}
json.dump(doc, open(sys.argv[1], "w"), indent=2)
EOF
    "$(dirname "$0")/bench_perf.sh" validate "$LOGDIR/faults.json" \
        || { echo "FAIL: faults.json failed schema validation"; exit 1; }
fi

# tree: hierarchical aggregation over real TCP. The same configuration
# runs once per topology; the tree leg must reproduce the star leg's
# digest, centers, and classic per-source ledger bit for bit (the
# reduction follows the server's own canonical merge schedule, so where
# the fold runs cannot change what it computes) while its physical
# counters prove the headline: O(log s) merge rounds and a server-side
# fold ingest strictly below the star run's full uplink. The
# measurements land in tree.json (schema ekm-tree-e2e/v1), validated by
# the shared checker in scripts/bench_perf.sh.
if [[ "$SUITE" == "tree" || "$SUITE" == "all" ]]; then
    TSOURCES=5
    TCOMMON=(--dataset mixture --n 750 --d 30 --k 2 --stages dispca,disss --seed 21)

    # run_tree_leg <topology>: one full serve + sources round with
    # --topology, keeping the logs apart so the legs can be compared.
    run_tree_leg() {
        local topo=$1
        echo "=== tree-${topo} [protocol]: ${TCOMMON[*]} (${TSOURCES} sources, --topology ${topo}) ==="
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" serve --listen "$ADDR" --sources "$TSOURCES" "${TCOMMON[@]}" \
            --topology "$topo" --centers-out "$LOGDIR/$topo-centers.txt" \
            >"$LOGDIR/$topo-serve.log" 2>&1 &
        local serve_pid=$!
        local src_pids=()
        for ((i = 0; i < TSOURCES; i++)); do
            timeout --kill-after=10 "$ROUND_TIMEOUT" \
                "$BIN" source --connect "$ADDR" --source-id "$i" --sources "$TSOURCES" \
                "${TCOMMON[@]}" --topology "$topo" >"$LOGDIR/$topo-source-$i.log" 2>&1 &
            src_pids+=($!)
        done
        local failed=0
        for ((i = 0; i < TSOURCES; i++)); do
            if ! wait "${src_pids[$i]}"; then
                echo "FAIL: ${topo} source $i exited nonzero"
                failed=1
            fi
        done
        if [[ $failed -ne 0 ]]; then
            kill "$serve_pid" 2>/dev/null || true
        fi
        if ! wait "$serve_pid"; then
            echo "FAIL: ${topo} serve exited nonzero"
            failed=1
        fi
        sed "s/^/  $topo | /" "$LOGDIR/$topo-serve.log"
        if [[ $failed -ne 0 ]]; then
            for ((i = 0; i < TSOURCES; i++)); do
                sed "s/^/  src $i | /" "$LOGDIR/$topo-source-$i.log"
            done
            exit 1
        fi
    }

    run_tree_leg star
    run_tree_leg tree

    # The tree leg is a pure placement change: same digest, same
    # centers, same classic ledger — totalled and per source.
    star_bits=$(sed -n 's/^total uplink-bits \([0-9]*\)$/\1/p' "$LOGDIR/star-serve.log")
    tree_bits=$(sed -n 's/^total uplink-bits \([0-9]*\)$/\1/p' "$LOGDIR/tree-serve.log")
    [[ -n "$star_bits" && "$star_bits" -gt 0 ]] \
        || { echo "FAIL: the star leg reported no uplink bits"; exit 1; }
    [[ "$tree_bits" == "$star_bits" ]] \
        || { echo "FAIL: tree uplink ${tree_bits} bits != star ${star_bits} bits"; exit 1; }
    star_digest=$(sed -n 's/^digest \(0x[0-9a-f]*\):.*/\1/p' "$LOGDIR/star-serve.log")
    tree_digest=$(sed -n 's/^digest \(0x[0-9a-f]*\):.*/\1/p' "$LOGDIR/tree-serve.log")
    [[ -n "$star_digest" && "$tree_digest" == "$star_digest" ]] \
        || { echo "FAIL: tree digest ${tree_digest} != star ${star_digest}"; exit 1; }
    cmp -s "$LOGDIR/star-centers.txt" "$LOGDIR/tree-centers.txt" \
        || { echo "FAIL: tree centers differ from the star leg's"; exit 1; }
    grep '^source .* uplink-bits' "$LOGDIR/star-serve.log" | sort >"$LOGDIR/bits-star.txt"
    grep '^source .* uplink-bits' "$LOGDIR/tree-serve.log" | sort >"$LOGDIR/bits-tree.txt"
    cmp -s "$LOGDIR/bits-star.txt" "$LOGDIR/bits-tree.txt" \
        || { echo "FAIL: per-source ledgers differ between the topologies"; \
             diff "$LOGDIR/bits-star.txt" "$LOGDIR/bits-tree.txt" || true; exit 1; }

    # The tree's physical counters: bounded merge depth, a server-side
    # fold ingest strictly below the star run's full uplink, and none
    # of it leaking into the star leg.
    merge_rounds=$(sed -n 's/^tree merge-rounds \([0-9]*\)$/\1/p' "$LOGDIR/tree-serve.log")
    fold_bits=$(sed -n 's/^tree server-fold-bits \([0-9]*\) over .*/\1/p' "$LOGDIR/tree-serve.log")
    fold_inputs=$(sed -n 's/^tree server-fold-bits [0-9]* over \([0-9]*\) input(s)$/\1/p' "$LOGDIR/tree-serve.log")
    [[ -n "$merge_rounds" && -n "$fold_bits" && -n "$fold_inputs" ]] \
        || { echo "FAIL: the tree leg did not report its merge counters"; exit 1; }
    if grep -q '^tree ' "$LOGDIR/star-serve.log"; then
        echo "FAIL: the star leg reported tree merge counters"
        exit 1
    fi
    python3 -c "
import math, sys
sys.exit(0 if 0 < $merge_rounds <= math.ceil(math.log2($TSOURCES)) + 1 else 1)" \
        || { echo "FAIL: $merge_rounds merge rounds exceed ceil(log2($TSOURCES))+1"; exit 1; }
    [[ "$fold_bits" -gt 0 && "$fold_bits" -lt "$star_bits" ]] \
        || { echo "FAIL: fold ingest ${fold_bits} not strictly below star uplink ${star_bits}"; exit 1; }
    echo "OK: tree matched star bit for bit ($merge_rounds merge rounds, fold ingest $fold_bits < $star_bits)"

    # Record the leg's measurements and hold them to the shared schema
    # checker — the same validator CI runs on bench documents.
    python3 - "$LOGDIR/tree.json" <<EOF
import json, sys
doc = {
    "schema": "ekm-tree-e2e/v1",
    "star": {"uplink_bits": $star_bits},
    "tree": {
        "sources": $TSOURCES,
        "uplink_bits": $tree_bits,
        "digest_matches_star": True,
        "merge_rounds": $merge_rounds,
        "server_fold_inputs": $fold_inputs,
        "server_fold_bits": $fold_bits,
    },
}
json.dump(doc, open(sys.argv[1], "w"), indent=2)
EOF
    "$(dirname "$0")/bench_perf.sh" validate "$LOGDIR/tree.json" \
        || { echo "FAIL: tree.json failed schema validation"; exit 1; }
fi

# replica: shard replication + health-tracked failover over real TCP.
# Every shard lives on its owner plus one ring replica (r=2), kept
# cold. Round A kills an owner mid-stage: the server promotes the
# replica, replays the dead owner's completed rounds onto it, and the
# run must finish with centers, digest, and classic per-source ledger
# bit-identical to a clean twin that never lost anyone. Round B kills
# an owner AND its replica holder: the dry ring degrades that shard
# within the documented bound while the other dead source still
# recovers onto its surviving replica. Round C crashes the *server*
# mid-promotion: the restarted `serve --resume` learns the absorbed
# origin from the journal's promotion record, accepts only the
# survivors, re-fires the promotion, and must again be bit-identical
# to the clean twin. The measurements land in replica.json (schema
# ekm-replica-e2e/v1), validated by the shared checker in
# scripts/bench_perf.sh.
if [[ "$SUITE" == "replica" || "$SUITE" == "all" ]]; then
    RCOMMON=(--dataset mixture --n 600 --d 40 --k 2 --stages dispca,disss --seed 9 \
             --sources 3 --replication 2)

    echo "=== replica-twin [protocol]: ${RCOMMON[*]} (clean baseline) ==="
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" "${RCOMMON[@]}" \
        --centers-out "$LOGDIR/replica-twin-centers.txt" >"$LOGDIR/replica-twin.log" 2>&1 &
    serve_pid=$!
    for i in 0 1 2; do
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" source --connect "$ADDR" --source-id "$i" "${RCOMMON[@]}" \
            >"$LOGDIR/replica-twin-source-$i.log" 2>&1 &
    done
    wait "$serve_pid" || { echo "FAIL: the clean replica twin failed"; exit 1; }
    grep -q "replica promotions 0" "$LOGDIR/replica-twin.log" \
        || { echo "FAIL: the clean twin promoted a replica"; exit 1; }
    twin_digest=$(sed -n 's/^digest \(0x[0-9a-f]*\):.*/\1/p' "$LOGDIR/replica-twin.log")

    echo "=== replica-failover [protocol]: ${RCOMMON[*]} (owner 1 killed mid-stage) ==="
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" "${RCOMMON[@]}" \
        --centers-out "$LOGDIR/replica-rec-centers.txt" >"$LOGDIR/replica-serve.log" 2>&1 &
    serve_pid=$!
    src_pids=()
    for i in 0 1 2; do
        flags=()
        [[ $i == 1 ]] && flags=(--fail-after-commands 2)
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" source --connect "$ADDR" --source-id "$i" "${RCOMMON[@]}" \
            "${flags[@]}" >"$LOGDIR/replica-source-$i.log" 2>&1 &
        src_pids+=($!)
    done
    for i in 0 2; do
        wait "${src_pids[$i]}" || { echo "FAIL: surviving source $i exited nonzero"; exit 1; }
    done
    if wait "${src_pids[1]}"; then
        echo "FAIL: the killed owner exited zero — the fault never fired"
        exit 1
    fi
    wait "$serve_pid" || { echo "FAIL: serve did not survive the lost owner"; exit 1; }
    sed 's/^/  serve  | /' "$LOGDIR/replica-serve.log"
    grep -q "recovered: source 1 re-homed onto replica host 2" "$LOGDIR/replica-serve.log" \
        || { echo "FAIL: serve did not promote the ring replica"; exit 1; }
    if grep -q "^degraded:" "$LOGDIR/replica-serve.log"; then
        echo "FAIL: the replicated run degraded instead of recovering"
        exit 1
    fi
    promotions=$(sed -n 's/^replica promotions \([0-9]*\)$/\1/p' "$LOGDIR/replica-serve.log")
    replica_bits=$(sed -n 's/^replica-bits \([0-9]*\)$/\1/p' "$LOGDIR/replica-serve.log")
    [[ -n "$promotions" && "$promotions" -ge 1 && -n "$replica_bits" && "$replica_bits" -gt 0 ]] \
        || { echo "FAIL: the replica control-plane counters are missing"; exit 1; }

    # Recovery must be invisible in the results: same centers, same
    # digest, same classic per-source ledger as the never-failed twin
    # (the replica overhead lives on its own counters, outside both).
    cmp -s "$LOGDIR/replica-rec-centers.txt" "$LOGDIR/replica-twin-centers.txt" \
        || { echo "FAIL: recovered centers differ from the clean twin's"; exit 1; }
    rec_digest=$(sed -n 's/^digest \(0x[0-9a-f]*\):.*/\1/p' "$LOGDIR/replica-serve.log")
    [[ -n "$twin_digest" && "$rec_digest" == "$twin_digest" ]] \
        || { echo "FAIL: recovered digest ${rec_digest} != twin ${twin_digest}"; exit 1; }
    grep '^source .* uplink-bits' "$LOGDIR/replica-serve.log" | sort >"$LOGDIR/bits-rec.txt"
    grep '^source .* uplink-bits' "$LOGDIR/replica-twin.log" | sort >"$LOGDIR/bits-rtwin.txt"
    cmp -s "$LOGDIR/bits-rec.txt" "$LOGDIR/bits-rtwin.txt" \
        || { echo "FAIL: recovered per-source ledger differs from the twin's"; \
             diff "$LOGDIR/bits-rec.txt" "$LOGDIR/bits-rtwin.txt" || true; exit 1; }
    echo "OK: failover recovered bit-identically ($promotions promotion(s), $replica_bits replica bits)"

    echo "=== replica-double-fault [protocol]: ${RCOMMON[*]} (owner 1 AND replica 2 killed) ==="
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" "${RCOMMON[@]}" --deadline-ms 5000 \
        >"$LOGDIR/replica-dbl-serve.log" 2>&1 &
    serve_pid=$!
    src_pids=()
    for i in 0 1 2; do
        flags=()
        [[ $i == 1 || $i == 2 ]] && flags=(--fail-after-commands 2)
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" source --connect "$ADDR" --source-id "$i" "${RCOMMON[@]}" \
            "${flags[@]}" >"$LOGDIR/replica-dbl-source-$i.log" 2>&1 &
        src_pids+=($!)
    done
    wait "${src_pids[0]}" || { echo "FAIL: the surviving source exited nonzero"; exit 1; }
    for i in 1 2; do
        if wait "${src_pids[$i]}"; then
            echo "FAIL: killed source $i exited zero — the fault never fired"
            exit 1
        fi
    done
    wait "$serve_pid" || { echo "FAIL: serve did not survive the double fault"; exit 1; }
    sed 's/^/  serve  | /' "$LOGDIR/replica-dbl-serve.log"
    # Source 1's only replica died with it: a clean degradation within
    # the documented bound. Source 2's replica (source 0) survived: it
    # must still recover. Half recovery, half degradation — per shard.
    grep -q "degraded: source 1 lost" "$LOGDIR/replica-dbl-serve.log" \
        || { echo "FAIL: the dry ring did not degrade the shard"; exit 1; }
    grep -q "rows dropped, cost-ratio bound" "$LOGDIR/replica-dbl-serve.log" \
        || { echo "FAIL: serve did not report the degradation bound"; exit 1; }
    grep -q "recovered: source 2 re-homed onto replica host 0" "$LOGDIR/replica-dbl-serve.log" \
        || { echo "FAIL: the shard with a live replica did not recover"; exit 1; }
    dbl_promotions=$(sed -n 's/^replica promotions \([0-9]*\)$/\1/p' "$LOGDIR/replica-dbl-serve.log")
    echo "OK: dry ring degraded, live ring recovered ($dbl_promotions promotion attempt(s))"

    echo "=== replica-resume [protocol]: ${RCOMMON[*]} (server crashed mid-promotion) ==="
    RJOURNAL="$LOGDIR/replica.journal"
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" "${RCOMMON[@]}" --journal "$RJOURNAL" \
        --crash-after-commands 14 >"$LOGDIR/replica-crash1.log" 2>&1 &
    serve_pid=$!
    src_pids=()
    for i in 0 1 2; do
        # The owner dies for good; the survivors reconnect and answer
        # the resumed server's replays from their caches.
        flags=(--reconnect 120)
        [[ $i == 1 ]] && flags=(--fail-after-commands 2)
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" source --connect "$ADDR" --source-id "$i" "${RCOMMON[@]}" \
            "${flags[@]}" >"$LOGDIR/replica-crash-source-$i.log" 2>&1 &
        src_pids+=($!)
    done
    if wait "$serve_pid"; then
        echo "FAIL: the first serve exited zero — the crash never fired"
        exit 1
    fi
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" "${RCOMMON[@]}" --journal "$RJOURNAL" --resume \
        --centers-out "$LOGDIR/replica-res-centers.txt" >"$LOGDIR/replica-crash2.log" 2>&1 \
        || { echo "FAIL: the resumed serve failed"; sed 's/^/  serve2 | /' "$LOGDIR/replica-crash2.log"; exit 1; }
    for i in 0 2; do
        wait "${src_pids[$i]}" || { echo "FAIL: source $i did not survive the server crash"; exit 1; }
    done
    if wait "${src_pids[1]}"; then
        echo "FAIL: the killed owner exited zero — the fault never fired"
        exit 1
    fi
    sed 's/^/  serve2 | /' "$LOGDIR/replica-crash2.log"
    grep -q "absorbed source(s) will not rejoin: \[1\]" "$LOGDIR/replica-crash2.log" \
        || { echo "FAIL: the resumed serve waited for the dead owner"; exit 1; }
    grep -q "recovered: source 1 re-homed onto replica host 2" "$LOGDIR/replica-crash2.log" \
        || { echo "FAIL: the resumed serve did not re-fire the promotion"; exit 1; }
    res_replayed=$(sed -n 's/^resume: replayed \([0-9]*\) journal record(s).*/\1/p' "$LOGDIR/replica-crash2.log")
    [[ -n "$res_replayed" && "$res_replayed" -gt 0 ]] \
        || { echo "FAIL: the resumed serve replayed nothing"; exit 1; }
    cmp -s "$LOGDIR/replica-res-centers.txt" "$LOGDIR/replica-twin-centers.txt" \
        || { echo "FAIL: resumed centers differ from the clean twin's"; exit 1; }
    res_digest=$(sed -n 's/^digest \(0x[0-9a-f]*\):.*/\1/p' "$LOGDIR/replica-crash2.log")
    [[ "$res_digest" == "$twin_digest" ]] \
        || { echo "FAIL: resumed digest ${res_digest} != twin ${twin_digest}"; exit 1; }
    echo "OK: crash mid-promotion resumed bit-identically ($res_replayed record(s) replayed)"

    # Record the suite's measurements and hold them to the shared
    # schema checker — the same validator CI runs on bench documents.
    python3 - "$LOGDIR/replica.json" <<EOF
import json, sys
doc = {
    "schema": "ekm-replica-e2e/v1",
    "sources": 3,
    "replication": 2,
    "failover": {
        "promotions": $promotions,
        "replica_bits": $replica_bits,
        "centers_bit_identical": True,
        "digest_matches_clean": True,
    },
    "double_fault": {
        "lost_sources": 1,
        "promotions": $dbl_promotions,
    },
    "resume": {
        "replayed_records": $res_replayed,
        "absorbed": 1,
        "centers_bit_identical": True,
    },
}
json.dump(doc, open(sys.argv[1], "w"), indent=2)
EOF
    "$(dirname "$0")/bench_perf.sh" validate "$LOGDIR/replica.json" \
        || { echo "FAIL: replica.json failed schema validation"; exit 1; }
fi

echo "distributed e2e: all rounds passed (suite: ${SUITE})"
