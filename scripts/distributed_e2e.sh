#!/usr/bin/env bash
# End-to-end distributed smoke test: launches `ekm serve` plus N real
# `ekm source` processes over loopback TCP and asserts that every
# process exits cleanly, that the server measured nonzero uplink bits,
# and that the digest line confirms the run was bit-identical across
# all processes. Run locally or from the CI `distributed-e2e` matrix:
#
#   cargo build --release && scripts/distributed_e2e.sh [core|streaming|all]
#
# `core` runs the named/arbitrary/centralized rounds, `streaming` the
# per-source merge-and-reduce pipelines (including --precision f32 and
# --leaf-size); the default `all` runs both.
set -euo pipefail

SUITE=${1:-all}
BIN=${EKM_BIN:-target/release/ekm}
PORT=${EKM_E2E_PORT:-17071}
ADDR="127.0.0.1:${PORT}"
# Hard per-process deadline: `ekm serve` blocks in accept() with no
# timeout until every source has handshaked, so a source that dies
# before connecting would otherwise hang the round (and the CI job).
ROUND_TIMEOUT=${EKM_E2E_TIMEOUT:-180}
LOGDIR=$(mktemp -d)
trap 'rm -rf "$LOGDIR"' EXIT

run_round() {
    local label=$1
    shift
    local sources=$1
    shift
    local common=("$@")

    echo "=== ${label}: ${common[*]} (${sources} sources) ==="
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" --sources "$sources" "${common[@]}" \
        >"$LOGDIR/serve.log" 2>&1 &
    local serve_pid=$!

    local src_pids=()
    for ((i = 0; i < sources; i++)); do
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" source --connect "$ADDR" --source-id "$i" --sources "$sources" \
            "${common[@]}" >"$LOGDIR/source-$i.log" 2>&1 &
        src_pids+=($!)
    done

    local failed=0
    for ((i = 0; i < sources; i++)); do
        if ! wait "${src_pids[$i]}"; then
            echo "FAIL: source $i exited nonzero"
            failed=1
        fi
    done
    # A dead source leaves serve blocked in accept(); don't wait for it.
    if [[ $failed -ne 0 ]]; then
        kill "$serve_pid" 2>/dev/null || true
    fi
    if ! wait "$serve_pid"; then
        echo "FAIL: serve exited nonzero"
        failed=1
    fi

    sed 's/^/  serve  | /' "$LOGDIR/serve.log"
    for ((i = 0; i < sources; i++)); do
        sed "s/^/  src $i  | /" "$LOGDIR/source-$i.log"
    done
    if [[ $failed -ne 0 ]]; then
        exit 1
    fi

    # The run must have transmitted real bits…
    local bits
    bits=$(sed -n 's/^total uplink-bits \([0-9]*\)$/\1/p' "$LOGDIR/serve.log")
    if [[ -z "$bits" || "$bits" -eq 0 ]]; then
        echo "FAIL: server reported no uplink bits"
        exit 1
    fi
    # …and every process must have verified the shared digest.
    if ! grep -q "verified bit-identical" "$LOGDIR/serve.log"; then
        echo "FAIL: server did not verify the run digest"
        exit 1
    fi
    for ((i = 0; i < sources; i++)); do
        if ! grep -q "verified bit-identical" "$LOGDIR/source-$i.log"; then
            echo "FAIL: source $i did not verify the run digest"
            exit 1
        fi
    done
    echo "OK: ${label} transmitted ${bits} uplink bits, digests verified"
}

# core: a named distributed pipeline (Algorithm 4), a quantized
# arbitrary --stages composition, and a centralized pipeline over a
# single remote source.
if [[ "$SUITE" == "core" || "$SUITE" == "all" ]]; then
    run_round "jl-bklw" 3 \
        --pipeline jl-bklw --dataset mixture --n 600 --d 40 --k 2 --seed 7
    run_round "stages" 2 \
        --stages dispca,jl,qt:8,disss --dataset mixture --n 400 --d 30 --k 2 --seed 11
    run_round "centralized" 1 \
        --pipeline jl-fss-jl --dataset mnist-like --n 500 --d 196 --k 2 --seed 5
fi

# streaming: per-source merge-and-reduce summaries across real
# processes — composed with DR/QT, with an explicit leaf size, and with
# the F32 auxiliary-payload precision.
if [[ "$SUITE" == "streaming" || "$SUITE" == "all" ]]; then
    run_round "stream" 3 \
        --stages jl,stream,qt:8 --dataset mixture --n 900 --d 40 --k 2 --seed 13
    run_round "stream-leaf" 2 \
        --stages stream,jl --leaf-size 128 --dataset mnist-like --n 600 --d 196 --k 2 --seed 17
    run_round "stream-f32" 2 \
        --stages jl,stream --precision f32 --dataset mixture --n 500 --d 30 --k 2 --seed 19
fi

echo "distributed e2e: all rounds passed (suite: ${SUITE})"
