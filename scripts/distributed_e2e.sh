#!/usr/bin/env bash
# End-to-end distributed smoke test: launches `ekm serve` plus N real
# `ekm source` processes over loopback TCP and asserts that every
# process exits cleanly and that the run's accounting holds. Run
# locally or from the CI `distributed-e2e` matrix:
#
#   cargo build --release && scripts/distributed_e2e.sh [core|streaming|non-replicated|all]
#
# `core` and `streaming` run in the replicated SPMD debug mode
# (`--replicated-check`): every process recomputes the full run and the
# transport verifies byte equality frame by frame — the strongest
# equivalence proof. `non-replicated` runs the default server-driven
# protocol — sources hold only their shard, the server drives the plan
# over one event-driven thread — and asserts the uplink bits equal the
# in-process simulation's (`ekm run`) while no divergence-check
# machinery ran. The default `all` runs everything.
set -euo pipefail

SUITE=${1:-all}
BIN=${EKM_BIN:-target/release/ekm}
PORT=${EKM_E2E_PORT:-17071}
ADDR="127.0.0.1:${PORT}"
# Hard per-process deadline: `ekm serve` blocks in accept() with no
# timeout until every source has handshaked, so a source that dies
# before connecting would otherwise hang the round (and the CI job).
ROUND_TIMEOUT=${EKM_E2E_TIMEOUT:-180}
LOGDIR=$(mktemp -d)
trap 'rm -rf "$LOGDIR"' EXIT

# run_round <label> <mode> <sources> <flags...>
#   mode: "replicated" adds --replicated-check and asserts the digest
#   verification lines; "protocol" runs the server-driven default and
#   asserts the accounting lines plus bit-equality with `ekm run`.
run_round() {
    local label=$1
    shift
    local mode=$1
    shift
    local sources=$1
    shift
    local common=("$@")
    local mode_flags=()
    if [[ "$mode" == "replicated" ]]; then
        mode_flags=(--replicated-check)
    fi

    echo "=== ${label} [${mode}]: ${common[*]} (${sources} sources) ==="
    timeout --kill-after=10 "$ROUND_TIMEOUT" \
        "$BIN" serve --listen "$ADDR" --sources "$sources" "${mode_flags[@]}" \
        "${common[@]}" >"$LOGDIR/serve.log" 2>&1 &
    local serve_pid=$!

    local src_pids=()
    for ((i = 0; i < sources; i++)); do
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" source --connect "$ADDR" --source-id "$i" --sources "$sources" \
            "${mode_flags[@]}" "${common[@]}" >"$LOGDIR/source-$i.log" 2>&1 &
        src_pids+=($!)
    done

    local failed=0
    for ((i = 0; i < sources; i++)); do
        if ! wait "${src_pids[$i]}"; then
            echo "FAIL: source $i exited nonzero"
            failed=1
        fi
    done
    # A dead source leaves serve blocked in accept(); don't wait for it.
    if [[ $failed -ne 0 ]]; then
        kill "$serve_pid" 2>/dev/null || true
    fi
    if ! wait "$serve_pid"; then
        echo "FAIL: serve exited nonzero"
        failed=1
    fi

    sed 's/^/  serve  | /' "$LOGDIR/serve.log"
    for ((i = 0; i < sources; i++)); do
        sed "s/^/  src $i  | /" "$LOGDIR/source-$i.log"
    done
    if [[ $failed -ne 0 ]]; then
        exit 1
    fi

    # The run must have transmitted real bits…
    local bits
    bits=$(sed -n 's/^total uplink-bits \([0-9]*\)$/\1/p' "$LOGDIR/serve.log")
    if [[ -z "$bits" || "$bits" -eq 0 ]]; then
        echo "FAIL: server reported no uplink bits"
        exit 1
    fi

    if [[ "$mode" == "replicated" ]]; then
        # …and every process must have verified the shared digest.
        if ! grep -q "verified bit-identical" "$LOGDIR/serve.log"; then
            echo "FAIL: server did not verify the run digest"
            exit 1
        fi
        for ((i = 0; i < sources; i++)); do
            if ! grep -q "verified bit-identical" "$LOGDIR/source-$i.log"; then
                echo "FAIL: source $i did not verify the run digest"
                exit 1
            fi
        done
    else
        # …the server must have driven the protocol without any
        # replication or divergence-check machinery…
        if ! grep -q "server-driven protocol" "$LOGDIR/serve.log"; then
            echo "FAIL: server did not run the server-driven protocol"
            exit 1
        fi
        if grep -qi "replicated\|bit-identical across" "$LOGDIR/serve.log"; then
            echo "FAIL: divergence-check machinery ran in protocol mode"
            exit 1
        fi
        if ! grep -q "per-source counters verified" "$LOGDIR/serve.log"; then
            echo "FAIL: server did not verify the per-source counters"
            exit 1
        fi
        for ((i = 0; i < sources; i++)); do
            if ! grep -q "counters verified by the server" "$LOGDIR/source-$i.log"; then
                echo "FAIL: source $i did not complete the protocol"
                exit 1
            fi
        done
        # …and the bits on the wire must equal the in-process
        # simulation's for the same configuration.
        timeout --kill-after=10 "$ROUND_TIMEOUT" \
            "$BIN" run --sources "$sources" "${common[@]}" \
            >"$LOGDIR/run.log" 2>&1
        local sim_bits
        sim_bits=$(sed -n 's/^total uplink-bits \([0-9]*\)$/\1/p' "$LOGDIR/run.log")
        if [[ "$bits" != "$sim_bits" ]]; then
            echo "FAIL: protocol uplink ${bits} bits != simulation ${sim_bits} bits"
            exit 1
        fi
        echo "OK: protocol uplink matches the simulation (${bits} bits)"
    fi
    echo "OK: ${label} transmitted ${bits} uplink bits"
}

# core: a named distributed pipeline (Algorithm 4), a quantized
# arbitrary --stages composition, and a centralized pipeline over a
# single remote source — all in the replicated debug mode, which proves
# byte equality frame by frame.
if [[ "$SUITE" == "core" || "$SUITE" == "all" ]]; then
    run_round "jl-bklw" replicated 3 \
        --pipeline jl-bklw --dataset mixture --n 600 --d 40 --k 2 --seed 7
    run_round "stages" replicated 2 \
        --stages dispca,jl,qt:8,disss --dataset mixture --n 400 --d 30 --k 2 --seed 11
    run_round "centralized" replicated 1 \
        --pipeline jl-fss-jl --dataset mnist-like --n 500 --d 196 --k 2 --seed 5
fi

# streaming: per-source merge-and-reduce summaries across real
# processes — composed with DR/QT, with an explicit leaf size, and with
# the F32 auxiliary-payload precision.
if [[ "$SUITE" == "streaming" || "$SUITE" == "all" ]]; then
    run_round "stream" replicated 3 \
        --stages jl,stream,qt:8 --dataset mixture --n 900 --d 40 --k 2 --seed 13
    run_round "stream-leaf" replicated 2 \
        --stages stream,jl --leaf-size 128 --dataset mnist-like --n 600 --d 196 --k 2 --seed 17
    run_round "stream-f32" replicated 2 \
        --stages jl,stream --precision f32 --dataset mixture --n 500 --d 30 --k 2 --seed 19
fi

# non-replicated: the server-driven protocol across real processes.
# Sources hold only their shard; the round asserts the uplink bits
# match the in-process simulation and that no divergence checks ran.
if [[ "$SUITE" == "non-replicated" || "$SUITE" == "all" ]]; then
    run_round "proto-jl-bklw" protocol 3 \
        --pipeline jl-bklw --dataset mixture --n 600 --d 40 --k 2 --seed 7
    run_round "proto-stages" protocol 2 \
        --stages dispca,jl,qt:8,disss --dataset mixture --n 400 --d 30 --k 2 --seed 11
    run_round "proto-stream" protocol 3 \
        --stages jl,stream,qt:8 --dataset mixture --n 900 --d 40 --k 2 --seed 13
    run_round "proto-centralized" protocol 1 \
        --pipeline jl-fss-jl --dataset mnist-like --n 500 --d 196 --k 2 --seed 5
fi

echo "distributed e2e: all rounds passed (suite: ${SUITE})"
