#!/usr/bin/env bash
# Perf-trajectory entry point: runs the bench_micro harness and leaves
# the machine-readable BENCH_micro.json at the workspace root.
#
#   scripts/bench_perf.sh          # full scale (paper-shape assignment sizes)
#   scripts/bench_perf.sh smoke    # smallest sizes (CI smoke; ~seconds)
#
# Env:
#   EKM_BENCH_JSON  override the output path (default <repo>/BENCH_micro.json)
set -euo pipefail

scale="${1:-full}"
case "$scale" in
    smoke|full) ;;
    *) echo "usage: $0 [smoke|full]" >&2; exit 2 ;;
esac

cd "$(dirname "$0")/.."
EKM_PERF_SCALE="$scale" cargo bench -p ekm-bench --bench bench_micro

out="${EKM_BENCH_JSON:-BENCH_micro.json}"
test -s "$out" || { echo "error: $out was not written" >&2; exit 1; }
echo "bench_perf: $out ($scale scale)"
