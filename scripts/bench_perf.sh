#!/usr/bin/env bash
# Perf-trajectory entry point: runs the bench_micro harness and leaves
# the machine-readable BENCH_micro.json at the workspace root. Also the
# single source of truth for validating the perf/fault JSON schemas —
# CI and the fault-injection e2e suite both call `validate` instead of
# carrying their own copies of the checks.
#
#   scripts/bench_perf.sh               # full scale (paper-shape assignment sizes)
#   scripts/bench_perf.sh smoke         # smallest sizes (CI smoke; ~seconds)
#   scripts/bench_perf.sh validate [f]  # validate an existing JSON document
#                                       # (default BENCH_micro.json) without
#                                       # re-running the benches
#
# `validate` accepts bench documents (ekm-bench-micro/v1, /v2, or /v3,
# with an optional `faults` section recording recovery-path overhead) and
# standalone fault-suite documents (ekm-fault-suite/v1, emitted by
# `scripts/distributed_e2e.sh faults`), tree-topology e2e documents
# (ekm-tree-e2e/v1, emitted by `scripts/distributed_e2e.sh tree`), and
# replica-failover e2e documents (ekm-replica-e2e/v1, emitted by
# `scripts/distributed_e2e.sh replica`). A
# fresh emit from this script is held to the stricter v3-only bar
# (including the reactor latency section); `validate` keeps accepting
# older v1/v2 recordings.
#
# Env:
#   EKM_BENCH_JSON  override the output path (default <repo>/BENCH_micro.json)
set -euo pipefail

mode="${1:-full}"
case "$mode" in
    smoke|full|validate) ;;
    *) echo "usage: $0 [smoke|full|validate [file]]" >&2; exit 2 ;;
esac

cd "$(dirname "$0")/.."

# validate_json <file> [fresh]
#   fresh: the document was just emitted, so the transitional v1/v2
#   bench schemas are not acceptable — it must be v3 with both compute
#   precisions timed and the reactor section recorded.
validate_json() {
    python3 - "$@" <<'EOF'
import json, sys

path = sys.argv[1]
fresh = len(sys.argv) > 2 and sys.argv[2] == "fresh"
doc = json.load(open(path))
schema = doc["schema"]


def check_faults(f):
    # Recovery-path overhead: a degraded run stayed within the paper's
    # documented cost-ratio bound, and a crashed driver replayed its
    # journal instead of recomputing.
    deg = f["degraded"]
    assert deg["rows_total"] > deg["rows_lost"] > 0, deg
    assert deg["cost_ratio_bound"] > 1.0, deg
    assert 0 < deg["cost_ratio"] <= deg["cost_ratio_bound"], deg
    res = f["resume"]
    assert res["replayed_records"] > 0, res
    assert res["resume_wall_ms"] >= 0, res
    assert res["centers_bit_identical"] is True, res


if schema == "ekm-fault-suite/v1":
    check_faults(doc)
    print(f"{path} ok ({schema}): degraded ratio "
          f"{doc['degraded']['cost_ratio']:.4f} <= bound "
          f"{doc['degraded']['cost_ratio_bound']:.4f}, "
          f"{doc['resume']['replayed_records']} records replayed")
    sys.exit(0)

if schema == "ekm-replica-e2e/v1":
    # Replica-aware failover: a promoted replica must leave the results
    # bit-identical to a never-failed run (the replica control plane is
    # charged to its own ledger, outside the digest), a dry ring must
    # degrade instead of hanging, and a crashed server must resume a
    # mid-failover run to the same end state without the dead owner.
    assert doc["replication"] >= 2, doc
    assert doc["sources"] > doc["replication"] - 1, doc
    f = doc["failover"]
    assert f["promotions"] >= 1, f
    assert f["replica_bits"] > 0, f
    assert f["centers_bit_identical"] is True, f
    assert f["digest_matches_clean"] is True, f
    d = doc["double_fault"]
    assert d["lost_sources"] >= 1, d
    assert d["promotions"] >= 1, d
    r = doc["resume"]
    assert r["replayed_records"] > 0, r
    assert r["absorbed"] >= 1, r
    assert r["centers_bit_identical"] is True, r
    print(f"{path} ok ({schema}): {f['promotions']} promotion(s) at r="
          f"{doc['replication']}, {f['replica_bits']} replica bits, "
          f"{r['replayed_records']} records replayed after the crash")
    sys.exit(0)

if schema == "ekm-tree-e2e/v1":
    # Hierarchical aggregation: the tree topology must be a pure
    # placement change (identical digest and classic uplink ledger)
    # while bounding the merge depth and shrinking the server's fold
    # ingest below the star run's full uplink.
    import math
    t = doc["tree"]
    s = t["sources"]
    assert s > 1, t
    assert t["digest_matches_star"] is True, t
    assert t["uplink_bits"] == doc["star"]["uplink_bits"], doc
    assert 0 < t["merge_rounds"] <= math.ceil(math.log2(s)) + 1, t
    assert t["server_fold_inputs"] >= 1, t
    assert 0 < t["server_fold_bits"] < doc["star"]["uplink_bits"], doc
    print(f"{path} ok ({schema}): {t['merge_rounds']} merge rounds over "
          f"{s} sources, fold ingest {t['server_fold_bits']} < star "
          f"uplink {doc['star']['uplink_bits']}")
    sys.exit(0)

assert schema in ("ekm-bench-micro/v1", "ekm-bench-micro/v2",
                  "ekm-bench-micro/v3"), schema
if fresh:
    # A fresh emit must be v3 with the distance kernels timed in both
    # compute precisions and the event-backend reactor latency recorded
    # (the v1/v2-compat paths are only for older recordings validated
    # after the fact).
    assert schema == "ekm-bench-micro/v3", schema
    computes = {k["compute"] for k in doc["kernels"]
                if k["name"].startswith("distance/assign_blocked")}
    assert computes == {"f64", "f32"}, computes
assert doc["kernels"], "no kernel timings recorded"
assert doc["assign_speedups"], "no assignment speedups recorded"
assert doc["transb_speedups"], "no matmul_transb speedups recorded"
assert doc["protocol"], "no protocol-mode timings recorded"
assert all(r["wire_bytes"] > 0 for r in doc["protocol"])
assert doc["stage_cache"]["hits"] > 0, "stage cache never hit"
if schema in ("ekm-bench-micro/v2", "ekm-bench-micro/v3"):
    for k in doc["kernels"]:
        assert k["compute"] in ("f64", "f32"), k
        assert k["workers"] >= 1, k
    assert doc["f32_speedups"], "no f32 compute speedups recorded"
    for r in doc["f32_speedups"]:
        assert r["compute"] == "f32" and r["blocked_f32_ns"] > 0, r
    assert doc["tile_sweep"], "no CENTER_TILE/POINT_BLOCK sweep recorded"
    for r in doc["assign_speedups"]:
        # The parallel-scalar comparison is either present or explicitly
        # labeled as skipped on single-worker hosts — never silently absent.
        assert "scalar_par_ns" in r or r.get("scalar_par", "").startswith("skipped"), r
reactor_note = ""
if schema == "ekm-bench-micro/v3":
    # Event-backend reactor: both backends measured over real loopback
    # rounds, the zero-copy wire path engaged (every counted frame saved
    # one header write syscall), and — when the host granted an epoll
    # instance — the epoll median at least 5x under the 200 us
    # sleep-poll park floor. An epoll-less host (sandbox, non-Linux)
    # still records both rows; the sleep fallback engages for both.
    rx = doc["reactor"]
    assert rx["sleep_floor_ns"] == 200_000, rx
    assert rx["syscalls_avoided"] > 0, rx
    backends = {b["reactor"]: b for b in rx["backends"]}
    assert set(backends) == {"sleep", "epoll"}, backends
    for b in rx["backends"]:
        assert b["median_round_ns"] > 0 and b["rounds"] > 0, b
        assert b["engaged"] in ("sleep", "epoll"), b
    if rx["epoll_available"]:
        epoll = backends["epoll"]
        assert epoll["engaged"] == "epoll", epoll
        bar = rx["sleep_floor_ns"] / 5
        assert epoll["median_round_ns"] <= bar, \
            f"epoll median {epoll['median_round_ns']} ns above {bar} ns"
        reactor_note = (f", epoll {epoll['median_round_ns'] / 1e3:.1f} us/round"
                        f" (floor {rx['sleep_floor_ns'] / 1e3:.0f} us)")
    else:
        reactor_note = ", reactor: epoll unavailable (sleep fallback)"
if "faults" in doc:
    check_faults(doc["faults"])
print(f"{path} ok ({schema}): {len(doc['kernels'])} kernels"
      + reactor_note
      + (", faults section present" if "faults" in doc else ""))
EOF
}

if [[ "$mode" == "validate" ]]; then
    file="${2:-BENCH_micro.json}"
    test -s "$file" || { echo "error: $file is missing or empty" >&2; exit 1; }
    validate_json "$file"
    exit 0
fi

EKM_PERF_SCALE="$mode" cargo bench -p ekm-bench --bench bench_micro

out="${EKM_BENCH_JSON:-BENCH_micro.json}"
test -s "$out" || { echo "error: $out was not written" >&2; exit 1; }

validate_json "$out" fresh

echo "bench_perf: $out ($mode scale)"
