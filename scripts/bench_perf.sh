#!/usr/bin/env bash
# Perf-trajectory entry point: runs the bench_micro harness and leaves
# the machine-readable BENCH_micro.json at the workspace root.
#
#   scripts/bench_perf.sh          # full scale (paper-shape assignment sizes)
#   scripts/bench_perf.sh smoke    # smallest sizes (CI smoke; ~seconds)
#
# Env:
#   EKM_BENCH_JSON  override the output path (default <repo>/BENCH_micro.json)
set -euo pipefail

scale="${1:-full}"
case "$scale" in
    smoke|full) ;;
    *) echo "usage: $0 [smoke|full]" >&2; exit 2 ;;
esac

cd "$(dirname "$0")/.."
EKM_PERF_SCALE="$scale" cargo bench -p ekm-bench --bench bench_micro

out="${EKM_BENCH_JSON:-BENCH_micro.json}"
test -s "$out" || { echo "error: $out was not written" >&2; exit 1; }

# Schema validation: v2 is current (per-kernel compute/workers fields,
# f32_speedups, tile_sweep); v1 documents are still accepted during the
# transition so older recordings keep validating.
python3 - "$out" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
schema = doc["schema"]
assert schema in ("ekm-bench-micro/v1", "ekm-bench-micro/v2"), schema
assert doc["kernels"], "no kernel timings recorded"
assert doc["assign_speedups"], "no assignment speedups recorded"
assert doc["transb_speedups"], "no matmul_transb speedups recorded"
assert doc["protocol"], "no protocol-mode timings recorded"
assert all(r["wire_bytes"] > 0 for r in doc["protocol"])
assert doc["stage_cache"]["hits"] > 0, "stage cache never hit"
if schema == "ekm-bench-micro/v2":
    for k in doc["kernels"]:
        assert k["compute"] in ("f64", "f32"), k
        assert k["workers"] >= 1, k
    assert doc["f32_speedups"], "no f32 compute speedups recorded"
    for r in doc["f32_speedups"]:
        assert r["compute"] == "f32" and r["blocked_f32_ns"] > 0, r
    assert doc["tile_sweep"], "no CENTER_TILE/POINT_BLOCK sweep recorded"
    for r in doc["assign_speedups"]:
        # The parallel-scalar comparison is either present or explicitly
        # labeled as skipped on single-worker hosts — never silently absent.
        assert "scalar_par_ns" in r or r.get("scalar_par", "").startswith("skipped"), r
print(f"{sys.argv[1]} ok ({schema}): {len(doc['kernels'])} kernels")
EOF

echo "bench_perf: $out ($scale scale)"
