//! Accuracy suite for the f32 *compute* precision (`ekm run --compute
//! f32`): the distance kernels on the sources and the server run in f32
//! while f64 stays the default and the bit-reproducibility reference.
//!
//! Unlike the wire-precision tests (`tests/quantization_pipeline.rs`,
//! which round what is *transmitted*), the compute path rounds what is
//! *computed*, so the contract is the same shape but applies to every
//! named pipeline: bounded relative center perturbation against the f64
//! twin, and a cost-ratio bound against the X* proxy. `EKM_SCALE=full`
//! grows the workload to the paper-adjacent shape.

use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::net::wire::Compute;
use edge_kmeans::prelude::*;

const SOURCES: usize = 4;

/// All eight named pipelines of the paper's experiment grid.
const NAMED: &[&str] = &[
    "NR",
    "FSS",
    "JL+FSS",
    "FSS+JL",
    "JL+FSS+JL",
    "BKLW",
    "JL+BKLW",
    "BKLW+JL",
];

fn scale() -> (usize, usize) {
    if std::env::var("EKM_SCALE").is_ok_and(|v| v.eq_ignore_ascii_case("full")) {
        (2400, 14)
    } else {
        (600, 10)
    }
}

fn workload(seed: u64) -> Matrix {
    let (n, side) = scale();
    let ds = MnistLike::new(n, side).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

fn named(name: &str, p: SummaryParams) -> StagePipeline {
    match name {
        "NR" => NoReduction::new(p).into_stage_pipeline(),
        "FSS" => Fss::new(p).into_stage_pipeline(),
        "JL+FSS" => JlFss::new(p).into_stage_pipeline(),
        "FSS+JL" => FssJl::new(p).into_stage_pipeline(),
        "JL+FSS+JL" => JlFssJl::new(p).into_stage_pipeline(),
        "BKLW" => Bklw::new(p).into_stage_pipeline(),
        "JL+BKLW" => JlBklw::new(p).into_stage_pipeline(),
        "BKLW+JL" => BklwJl::new(p).into_stage_pipeline(),
        other => panic!("unknown pipeline {other}"),
    }
}

/// Runs a named pipeline end to end at the given compute precision.
fn run_at(name: &str, data: &Matrix, compute: Compute) -> RunOutput {
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d)
        .with_seed(23)
        .with_compute(compute);
    let pipe = named(name, params);
    if pipe.is_distributed() {
        let parts = partition_uniform(data, SOURCES, pipe.params().seed).unwrap();
        let mut net = Network::new(SOURCES);
        pipe.run_shards(&parts, &mut net).unwrap()
    } else {
        let mut net = Network::new(1);
        pipe.run(data, &mut net).unwrap()
    }
}

/// Relative Frobenius distance between two center sets — the "center
/// perturbation" metric of the compute-precision accuracy contract.
fn relative_center_perturbation(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape());
    let mut diff = 0.0f64;
    let mut norm = 0.0f64;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        diff += (x - y) * (x - y);
        norm += x * x;
    }
    (diff / norm.max(f64::MIN_POSITIVE)).sqrt()
}

#[test]
fn f32_compute_contract_holds_on_all_named_pipelines() {
    let data = workload(41);
    let reference = evaluation::reference(&data, 2, 5, 1).unwrap();
    for name in NAMED {
        let full = run_at(name, &data, Compute::F64);
        let single = run_at(name, &data, Compute::F32);
        // f32 only changes kernel arithmetic, never what goes on the wire
        // per point — the summary sizes must agree exactly.
        assert_eq!(
            full.summary_points, single.summary_points,
            "{name}: summary size changed under f32 compute"
        );
        let rel = relative_center_perturbation(&full.centers, &single.centers);
        assert!(rel < 1e-2, "{name}: relative center perturbation {rel}");
        let nc_full = evaluation::normalized_cost(&data, &full.centers, reference.cost).unwrap();
        let nc_single =
            evaluation::normalized_cost(&data, &single.centers, reference.cost).unwrap();
        assert!(
            nc_single < nc_full * 1.05 + 0.01,
            "{name}: f32 cost {nc_single} vs f64 {nc_full}"
        );
    }
}

#[test]
fn f64_compute_is_the_default_bit_for_bit() {
    // `Compute::F64` is not a near-equal twin of the default — it IS the
    // default: explicit and implicit spellings must agree bitwise.
    let data = workload(43);
    let (n, d) = data.shape();
    for name in ["JL+FSS+JL", "BKLW"] {
        let explicit = run_at(name, &data, Compute::F64);
        let params = SummaryParams::practical(2, n, d).with_seed(23);
        let pipe = named(name, params);
        let implicit = if pipe.is_distributed() {
            let parts = partition_uniform(&data, SOURCES, pipe.params().seed).unwrap();
            let mut net = Network::new(SOURCES);
            pipe.run_shards(&parts, &mut net).unwrap()
        } else {
            let mut net = Network::new(1);
            pipe.run(&data, &mut net).unwrap()
        };
        assert!(
            explicit.centers.approx_eq(&implicit.centers, 0.0),
            "{name}: explicit f64 diverged from the default"
        );
        assert_eq!(explicit.uplink_bits, implicit.uplink_bits, "{name}");
    }
}

#[test]
fn f32_compute_is_deterministic() {
    // Lower precision must not mean lower reproducibility: f32 runs are
    // bit-identical on rerun, like everything else in the repo.
    let data = workload(47);
    for name in ["JL+FSS", "BKLW+JL"] {
        let a = run_at(name, &data, Compute::F32);
        let b = run_at(name, &data, Compute::F32);
        assert!(
            a.centers.approx_eq(&b.centers, 0.0),
            "{name}: f32 rerun diverged"
        );
        assert_eq!(a.uplink_bits, b.uplink_bits, "{name}");
    }
}
