//! End-to-end integration tests for the multi-source pipelines
//! (§7.2 Figure 2 / Table 4 conditions, scaled; 10 data sources as in the
//! paper).

use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::partition::{partition_skewed, partition_uniform};
use edge_kmeans::prelude::*;

fn workload(n: usize, side: usize, seed: u64) -> Matrix {
    let ds = MnistLike::new(n, side).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

#[test]
fn figure2_regime_both_pipelines_close_to_reference() {
    let data = workload(1500, 12, 1);
    let (n, d) = data.shape();
    let shards = partition_uniform(&data, 10, 3).unwrap();
    let reference = evaluation::reference(&data, 2, 5, 1).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(4);
    for pipe in [
        Box::new(Bklw::new(params.clone())) as Box<dyn DistributedPipeline>,
        Box::new(JlBklw::new(params.clone())),
    ] {
        let mut net = Network::new(10);
        let out = pipe.run(&shards, &mut net).unwrap();
        let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
        // Paper Fig. 2: both land within ~2-10% of optimal.
        assert!(nc < 1.25, "{}: normalized cost {nc}", pipe.name());
        assert_eq!(out.centers.shape(), (2, d));
    }
}

#[test]
fn table4_shape_jl_bklw_cheaper_than_bklw() {
    let data = workload(2000, 16, 2);
    let (n, d) = data.shape();
    let shards = partition_uniform(&data, 10, 5).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(6);
    let mut net1 = Network::new(10);
    let bklw = Bklw::new(params.clone()).run(&shards, &mut net1).unwrap();
    let mut net2 = Network::new(10);
    let jl = JlBklw::new(params).run(&shards, &mut net2).unwrap();
    let c_bklw = bklw.normalized_comm(n, d);
    let c_jl = jl.normalized_comm(n, d);
    assert!(c_bklw < 0.5, "BKLW comm {c_bklw} not a reduction");
    assert!(
        c_jl < c_bklw,
        "JL+BKLW ({c_jl}) must beat BKLW ({c_bklw}) on communication"
    );
}

#[test]
fn every_source_participates_in_uplink() {
    let data = workload(1200, 12, 3);
    let (n, d) = data.shape();
    let shards = partition_uniform(&data, 10, 7).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(8);
    let mut net = Network::new(10);
    let _ = JlBklw::new(params).run(&shards, &mut net).unwrap();
    for i in 0..10 {
        assert!(net.stats().uplink_bits(i) > 0, "source {i} sent nothing");
        assert!(
            net.stats().downlink_bits(i) > 0,
            "source {i} received nothing (basis broadcast missing?)"
        );
    }
    // Protocol round count: SVD summary + cost report + samples = 3 uplink
    // messages per source; basis broadcast + allocation = 2 downlink.
    assert_eq!(net.stats().total_uplink_messages(), 30);
    assert_eq!(net.stats().total_downlink_messages(), 20);
}

#[test]
fn skewed_shards_still_work() {
    let data = workload(1500, 12, 4);
    let (n, d) = data.shape();
    // Highly imbalanced devices (geometric share sizes).
    let shards = partition_skewed(&data, 10, 0.6, 9).unwrap();
    let reference = evaluation::reference(&data, 2, 5, 2).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(10);
    let mut net = Network::new(10);
    let out = JlBklw::new(params).run(&shards, &mut net).unwrap();
    let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
    assert!(nc < 1.3, "skewed-shard normalized cost {nc}");
}

#[test]
fn distributed_matches_centralized_quality() {
    // Splitting the data across sources should not cost much quality
    // relative to the centralized JL+FSS pipeline on the union.
    let data = workload(1500, 12, 5);
    let (n, d) = data.shape();
    let reference = evaluation::reference(&data, 2, 5, 3).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(11);

    let mut net1 = Network::new(1);
    let central = JlFss::new(params.clone()).run(&data, &mut net1).unwrap();
    let nc_central = evaluation::normalized_cost(&data, &central.centers, reference.cost).unwrap();

    let shards = partition_uniform(&data, 10, 12).unwrap();
    let mut net10 = Network::new(10);
    let dist = JlBklw::new(params).run(&shards, &mut net10).unwrap();
    let nc_dist = evaluation::normalized_cost(&data, &dist.centers, reference.cost).unwrap();

    assert!(
        nc_dist < nc_central + 0.25,
        "distributed {nc_dist} much worse than centralized {nc_central}"
    );
}

#[test]
fn quantized_distributed_pipelines() {
    let data = workload(1200, 12, 6);
    let (n, d) = data.shape();
    let shards = partition_uniform(&data, 10, 13).unwrap();
    let reference = evaluation::reference(&data, 2, 5, 4).unwrap();
    let q = RoundingQuantizer::new(10).unwrap();
    let base = SummaryParams::practical(2, n, d).with_seed(14);

    let mut net1 = Network::new(10);
    let plain = JlBklw::new(base.clone()).run(&shards, &mut net1).unwrap();
    let mut net2 = Network::new(10);
    let quant = JlBklw::new(base.with_quantizer(q))
        .run(&shards, &mut net2)
        .unwrap();

    assert!(
        quant.uplink_bits < plain.uplink_bits,
        "quantized {} >= plain {}",
        quant.uplink_bits,
        plain.uplink_bits
    );
    let nc = evaluation::normalized_cost(&data, &quant.centers, reference.cost).unwrap();
    assert!(nc < 1.3, "quantized distributed cost {nc}");
}
