//! Aggregation-topology equivalence: `--topology tree` must be a pure
//! placement change. For every source count (including non-powers of
//! two) and pipeline, the tree run's centers, run digest, and classic
//! per-source ledgers are bit-identical to the star run and the
//! in-process simulation — the pairwise reduction follows the same
//! canonical merge schedule the server's fold uses, and every merge
//! output is wire-roundtripped, so where the fold *runs* cannot change
//! what it computes. The tree's own physical counters then prove the
//! headline: `ceil(log2 s) + 1` merge rounds and a single server-side
//! fold input per gather, with the star-only counters staying zero.
//!
//! The fault path composes: a holder that dies mid-tree takes exactly
//! its absorbed subtree out of the run, a holder that dies *after* its
//! summary reached the server loses only its own leaf, and the
//! degradation record keeps the `(1 + eps) / (1 - p)` cost-ratio bound
//! from the straggler work.

use edge_kmeans::core::executor::SourceExecutor;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::net::protocol::{
    channel_pairs, Command, CommandTransport, DeadlinePolicy, Response,
};
use edge_kmeans::net::{NetError, Network, NetworkStats, RunDigest, SourceEndpoint};
use edge_kmeans::prelude::*;
use proptest::prelude::*;

const PIPELINES: [&str; 3] = ["dispca,disss", "jl,dispca,qt:8,disss", "jl,stream,qt"];

/// Gathers the tree reduces for each pipeline: one per disPCA summary
/// collection, one per disSS coreset collection, one for the final
/// transmit (absent when disSS already handed the summary off).
fn expected_gathers(list: &str) -> u64 {
    let dispca = list.matches("dispca").count() as u64;
    let disss = list.matches("disss").count() as u64;
    dispca + disss + u64::from(disss == 0)
}

fn ceil_log2(m: u64) -> u64 {
    (m as f64).log2().ceil() as u64
}

fn workload(n: usize, d: usize, seed: u64) -> Matrix {
    let raw = GaussianMixture::new(n, d, 2)
        .with_separation(4.0)
        .with_seed(seed)
        .generate()
        .unwrap()
        .points;
    edge_kmeans::data::normalize::normalize_paper(&raw).0
}

fn run_topology(
    list: &str,
    data: &Matrix,
    m: usize,
    topology: Topology,
) -> (RunOutput, NetworkStats) {
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d)
        .with_seed(17)
        .with_topology(topology);
    let pipe = StagePipeline::from_names(list, params).unwrap();
    let shards = if m == 1 {
        vec![data.clone()]
    } else {
        partition_uniform(data, m, pipe.params().seed).unwrap()
    };
    let (out, stats, reports) = pipe.run_channel_detailed(shards).unwrap();
    // Every executor's self-reported ledger matches the server's row
    // for it — the driver verified this at Fin time, re-checked here.
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(report.uplink_bits, stats.uplink_bits(i), "{list}/{m}");
        assert_eq!(report.downlink_bits, stats.downlink_bits(i), "{list}/{m}");
    }
    (out, stats)
}

/// The full cross-topology contract for one `(pipeline, m)` cell.
fn assert_tree_matches(list: &str, m: usize) {
    let data = workload(45 * m.max(4), 10, 7 + m as u64);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d).with_seed(17);
    let pipe = StagePipeline::from_names(list, params).unwrap();
    let shards = if m == 1 {
        vec![data.clone()]
    } else {
        partition_uniform(&data, m, pipe.params().seed).unwrap()
    };
    let mut net = Network::new(m);
    let sim = pipe.run_shards(&shards, &mut net).unwrap();

    let (star, star_stats) = run_topology(list, &data, m, Topology::Star);
    let (tree, tree_stats) = run_topology(list, &data, m, Topology::Tree);

    // Centers: bit-identical across all three execution models.
    for ((a, b), c) in sim
        .centers
        .as_slice()
        .iter()
        .zip(star.centers.as_slice())
        .zip(tree.centers.as_slice())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{list}/{m}: star centers");
        assert_eq!(a.to_bits(), c.to_bits(), "{list}/{m}: tree centers");
    }
    // Digests: the hash the sources verify at shutdown.
    let star_digest = RunDigest::new(&star_stats, &star.centers);
    let tree_digest = RunDigest::new(&tree_stats, &tree.centers);
    assert_eq!(star_digest, tree_digest, "{list}/{m}: digest");
    assert_eq!(
        RunDigest::new(net.stats(), &sim.centers),
        tree_digest,
        "{list}/{m}: sim digest"
    );
    // Classic ledgers: identical per source and per message kind.
    for i in 0..m {
        assert_eq!(
            star_stats.uplink_bits(i),
            tree_stats.uplink_bits(i),
            "{list}/{m}: source {i} uplink"
        );
        assert_eq!(
            star_stats.downlink_bits(i),
            tree_stats.downlink_bits(i),
            "{list}/{m}: source {i} downlink"
        );
    }
    assert_eq!(
        star_stats.uplink_bits_by_kind(),
        tree_stats.uplink_bits_by_kind(),
        "{list}/{m}: kinds"
    );
    assert_eq!(
        star_stats.total_uplink_messages(),
        tree_stats.total_uplink_messages(),
        "{list}/{m}: uplink messages"
    );
    assert_eq!(sim.uplink_bits, tree.uplink_bits, "{list}/{m}: uplink");
    assert_eq!(
        sim.downlink_bits, tree.downlink_bits,
        "{list}/{m}: downlink"
    );
    assert_eq!(sim.source_ops, star.source_ops, "{list}/{m}: star ops");
    assert_eq!(sim.source_ops, tree.source_ops, "{list}/{m}: tree ops");
    assert_eq!(sim.summary_points, tree.summary_points, "{list}/{m}");

    // The star run never touches the tree-only physical counters.
    assert_eq!(star_stats.total_relay_bits(), 0, "{list}/{m}");
    assert_eq!(star_stats.server_fold_inputs(), 0, "{list}/{m}");
    assert!(star_stats.merge_levels().is_empty(), "{list}/{m}");

    if m == 1 {
        // A single source is its own root: tree degenerates to star.
        assert_eq!(tree_stats.server_fold_inputs(), 0, "{list}/{m}");
        return;
    }
    // The headline counters: one server-side fold input per gather and
    // at most `ceil(log2 m) + 1` merge rounds (the `+ 1` is the root's
    // delivery to the server).
    assert_eq!(
        tree_stats.server_fold_inputs(),
        expected_gathers(list),
        "{list}/{m}: fold inputs"
    );
    assert_eq!(
        tree_stats.max_merge_rounds(),
        ceil_log2(m as u64) + 1,
        "{list}/{m}: merge rounds"
    );
    assert!(tree_stats.total_relay_bits() > 0, "{list}/{m}: relay");
    // The server folds strictly less than the star run ships to it.
    assert!(
        tree_stats.server_fold_bits() < star_stats.total_uplink_bits(),
        "{list}/{m}: fold ingest {} >= star uplink {}",
        tree_stats.server_fold_bits(),
        star_stats.total_uplink_bits()
    );
    // Per-gather active sets start at the responder count and halve.
    for (&(_, level), &active) in tree_stats.merge_levels() {
        assert!(
            active <= (m as u64).div_ceil(1 << level.min(62)),
            "{list}/{m}: level {level} active {active}"
        );
    }
}

#[test]
fn tree_matches_star_and_simulation_at_every_source_count() {
    for m in 1..=9 {
        assert_tree_matches("dispca,disss", m);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn tree_matches_star_across_pipelines(m in 1usize..=9, p in 0usize..PIPELINES.len()) {
        assert_tree_matches(PIPELINES[p], m);
    }
}

/// A real executor behind an endpoint that dies on its `die_at`-th
/// command receive — the channel-backend analogue of a machine failing
/// mid-protocol at a chosen round.
struct DyingEndpoint<E> {
    inner: E,
    received: usize,
    die_at: usize,
}

impl<E: SourceEndpoint> SourceEndpoint for DyingEndpoint<E> {
    fn recv_command(&mut self) -> Result<Command, NetError> {
        self.received += 1;
        if self.received >= self.die_at {
            return Err(NetError::Transport {
                context: "fault injection",
                detail: "the source host failed".to_string(),
            });
        }
        self.inner.recv_command()
    }

    fn send_response(&mut self, resp: Response) -> Result<(), NetError> {
        self.inner.send_response(resp)
    }

    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        self.inner.set_deadline(policy);
    }
}

/// Runs `jl,stream,qt` at `m = 4` over the tree with source `victim`
/// dying on its `die_at`-th command, returning the degraded output.
/// Commands per source: describe, three stage rounds, transmit, then
/// the merge rounds — `die_at = 6` is the victim's first `MergeWith`.
fn run_with_mid_tree_death(victim: usize, die_at: usize) -> (RunOutput, Vec<u64>) {
    let m = 4;
    let data = workload(240, 10, 31);
    let params = SummaryParams::practical(2, 240, 10)
        .with_seed(17)
        .with_topology(Topology::Tree);
    let pipe = StagePipeline::from_names("jl,stream,qt", params).unwrap();
    let shards = partition_uniform(&data, m, pipe.params().seed).unwrap();
    let rows: Vec<u64> = shards.iter().map(|s| s.rows() as u64).collect();
    let (mut hub, endpoints) = channel_pairs(m);
    let out = std::thread::scope(|scope| {
        for (i, (endpoint, shard)) in endpoints.into_iter().zip(shards).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            scope.spawn(move || {
                let mut endpoint = DyingEndpoint {
                    inner: endpoint,
                    received: 0,
                    die_at: if i == victim { die_at } else { usize::MAX },
                };
                let _ = SourceExecutor::new(stages, params, i, m, shard).serve(&mut endpoint);
            });
        }
        pipe.run_driver(&mut hub).unwrap()
    });
    (out, rows)
}

#[test]
fn a_holder_lost_before_emitting_degrades_onto_the_survivors() {
    // Source 1 dies when asked to emit its buffered summary: its leaf
    // never reached anyone, so exactly source 1 is lost.
    let (out, rows) = run_with_mid_tree_death(1, 6);
    let record = out.degraded.expect("the lost holder must be recorded");
    let lost: Vec<usize> = record.lost_sources.iter().map(|&(i, _)| i).collect();
    assert_eq!(lost, vec![1]);
    assert_eq!(record.rows_lost, rows[1] as usize);
    assert_eq!(record.rows_total, rows.iter().sum::<u64>() as usize);
    let frac = record.rows_lost as f64 / record.rows_total as f64;
    let expected = (1.0 + 0.5) / (1.0 - frac);
    assert!(
        (record.cost_ratio_bound - expected).abs() < 1e-9,
        "cost-ratio bound {} vs {}",
        record.cost_ratio_bound,
        expected
    );
    assert!(out.summary_points > 0);
}

#[test]
fn a_holder_lost_after_its_partner_emitted_strands_only_its_own_leaf() {
    // Source 0 dies receiving source 1's emitted summary: the summary
    // already transited the server and joins the server-side fold, so
    // only source 0's leaf is lost.
    let (out, rows) = run_with_mid_tree_death(0, 6);
    let record = out.degraded.expect("the lost holder must be recorded");
    let lost: Vec<usize> = record.lost_sources.iter().map(|&(i, _)| i).collect();
    assert_eq!(lost, vec![0]);
    assert_eq!(record.rows_lost, rows[0] as usize);
    assert!(out.summary_points > 0);
}

/// Runs `jl,stream,qt` at replication 2 over the tree topology, with
/// `victim` (if any) dying on its `die_at`-th command. Every source
/// carries the cold replica shards its ring position assigns it, and
/// the driver runs behind the routing layer so a promoted origin's
/// merge rounds reach the persona via origin-id routing.
fn run_tree_replicated(
    m: usize,
    victim: Option<usize>,
    die_at: usize,
) -> (RunOutput, NetworkStats) {
    let data = workload(45 * m.max(4), 10, 31);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d)
        .with_seed(17)
        .with_topology(Topology::Tree)
        .with_replication(2);
    let pipe = StagePipeline::from_names("jl,stream,qt", params).unwrap();
    let shards = partition_uniform(&data, m, pipe.params().seed).unwrap();
    let (hub, endpoints) = channel_pairs(m);
    std::thread::scope(|scope| {
        for (i, (endpoint, shard)) in endpoints.into_iter().zip(shards.clone()).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            let replicas: std::collections::BTreeMap<usize, Matrix> =
                edge_kmeans::core::params::replica_origins(i, m, 2)
                    .into_iter()
                    .map(|origin| (origin, shards[origin].clone()))
                    .collect();
            scope.spawn(move || {
                let mut endpoint = DyingEndpoint {
                    inner: endpoint,
                    received: 0,
                    die_at: if Some(i) == victim {
                        die_at
                    } else {
                        usize::MAX
                    },
                };
                let _ = SourceExecutor::new(stages, params, i, m, shard)
                    .with_replicas(replicas)
                    .serve(&mut endpoint);
            });
        }
        let mut routed = edge_kmeans::net::RoutingTransport::new(hub);
        let out = pipe.run_driver(&mut routed).unwrap();
        let stats = routed.stats().clone();
        (out, stats)
    })
}

/// Promotion under the tree, against the clean twin: whether the owner
/// dies before it emitted its summary (odd victim, killed on its
/// `MergeWith{emit}`), after its partner already emitted (even victim,
/// killed receiving the partner's summary), or mid-stage before any
/// merge began, the replica persona inherits the victim's merge role
/// via origin-id routing and the run recovers bit-identical.
fn assert_tree_promotion_recovers(m: usize) {
    let (clean, clean_stats) = run_tree_replicated(m, None, 0);
    assert!(clean.recovered.is_none() && clean.degraded.is_none());
    // die_at = 6 is the victim's first merge command (after describe,
    // three stage rounds, and transmit); die_at = 3 is mid-stage.
    for (victim, die_at) in [(1usize, 6usize), (0, 6), (1, 3)] {
        if victim >= m {
            continue;
        }
        let tag = format!("m={m} victim={victim} die_at={die_at}");
        let (out, stats) = run_tree_replicated(m, Some(victim), die_at);
        let host = (victim + 1) % m;
        assert!(out.degraded.is_none(), "{tag}: must not degrade");
        let rec = out.recovered.as_ref().expect("promotion must be recorded");
        assert_eq!(rec.promoted, vec![(victim, host)], "{tag}");
        for (a, b) in out.centers.as_slice().iter().zip(clean.centers.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{tag}: centers");
        }
        for i in 0..m {
            assert_eq!(
                stats.uplink_bits(i),
                clean_stats.uplink_bits(i),
                "{tag}: source {i} uplink"
            );
            assert_eq!(
                stats.downlink_bits(i),
                clean_stats.downlink_bits(i),
                "{tag}: source {i} downlink"
            );
        }
        assert_eq!(
            RunDigest::new(&stats, &out.centers),
            RunDigest::new(&clean_stats, &clean.centers),
            "{tag}: digest"
        );
        assert_eq!(stats.replica_promotions(), 1, "{tag}");
        assert!(stats.replica_bits() > 0, "{tag}");
    }
}

#[test]
fn tree_promotion_recovers_bit_identical() {
    for m in [2, 4, 5] {
        assert_tree_promotion_recovers(m);
    }
}

#[test]
fn tree_promotion_recovers_at_every_source_count() {
    // The full sweep rides CI's EKM_SCALE=full axis; the smoke axis
    // covers {2, 4, 5} above.
    if !std::env::var("EKM_SCALE").is_ok_and(|v| v.eq_ignore_ascii_case("full")) {
        return;
    }
    for m in 2..=9 {
        assert_tree_promotion_recovers(m);
    }
}
