//! Golden-equivalence tests: every paper pipeline, expressed as an
//! explicit `--stages`-style list through the generic engine, must
//! reproduce its named constructor's `RunOutput` *exactly* — the same
//! `uplink_bits` to the bit, the same centers to the last ulp, and the
//! same per-source network statistics — and concurrent multi-source
//! execution must be bit-identical to sequential execution.

use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::net::NetworkStats;
use edge_kmeans::prelude::*;

const SOURCES: usize = 6;

fn workload(seed: u64) -> Matrix {
    let ds = MnistLike::new(900, 10).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

fn params(data: &Matrix, quantized: bool) -> SummaryParams {
    let (n, d) = data.shape();
    let p = SummaryParams::practical(2, n, d).with_seed(17);
    if quantized {
        p.with_quantizer(RoundingQuantizer::new(8).unwrap())
    } else {
        p
    }
}

/// Runs a pipeline on a fresh network and returns its output plus the
/// network's final statistics.
fn run(pipe: &StagePipeline, data: &Matrix) -> (RunOutput, NetworkStats) {
    let out = if pipe.is_distributed() {
        let shards = partition_uniform(data, SOURCES, pipe.params().seed).unwrap();
        let mut net = Network::new(SOURCES);
        let out = pipe.run_shards(&shards, &mut net).unwrap();
        (out, net.stats().clone())
    } else {
        let mut net = Network::new(1);
        let out = pipe.run(data, &mut net).unwrap();
        (out, net.stats().clone())
    };
    out
}

/// Asserts two runs of the same summary protocol are indistinguishable.
fn assert_identical(label: &str, a: (RunOutput, NetworkStats), b: (RunOutput, NetworkStats)) {
    let ((oa, sa), (ob, sb)) = (a, b);
    assert_eq!(oa.uplink_bits, ob.uplink_bits, "{label}: uplink bits");
    assert_eq!(oa.downlink_bits, ob.downlink_bits, "{label}: downlink bits");
    assert_eq!(
        oa.summary_points, ob.summary_points,
        "{label}: summary size"
    );
    assert_eq!(oa.centers.shape(), ob.centers.shape(), "{label}: shape");
    assert!(
        oa.centers.approx_eq(&ob.centers, 0.0),
        "{label}: centers differ"
    );
    assert_eq!(sa, sb, "{label}: network statistics");
}

/// The seven paper pipelines and the stage lists that must match them.
fn named_vs_stages(
    p: &SummaryParams,
    quantized: bool,
) -> Vec<(&'static str, StagePipeline, StagePipeline)> {
    let stages = |list: &str| StagePipeline::from_names(list, p.clone()).unwrap();
    let mut cases = vec![
        (
            "NR",
            NoReduction::new(p.clone()).into_stage_pipeline(),
            StagePipeline::new(Vec::new(), p.clone()),
        ),
        (
            "FSS",
            Fss::new(p.clone()).into_stage_pipeline(),
            stages(if quantized { "fss,qt" } else { "fss" }),
        ),
        (
            "JL+FSS",
            JlFss::new(p.clone()).into_stage_pipeline(),
            stages(if quantized { "jl,fss,qt" } else { "jl,fss" }),
        ),
        (
            "FSS+JL",
            FssJl::new(p.clone()).into_stage_pipeline(),
            stages(if quantized { "fss,jl,qt" } else { "fss,jl" }),
        ),
        (
            "JL+FSS+JL",
            JlFssJl::new(p.clone()).into_stage_pipeline(),
            stages(if quantized {
                "jl,fss,jl,qt"
            } else {
                "jl,fss,jl"
            }),
        ),
        (
            "BKLW",
            Bklw::new(p.clone()).into_stage_pipeline(),
            stages(if quantized {
                "dispca,qt,disss"
            } else {
                "dispca,disss"
            }),
        ),
        (
            "JL+BKLW",
            JlBklw::new(p.clone()).into_stage_pipeline(),
            stages(if quantized {
                "jl,dispca,qt,disss"
            } else {
                "jl,dispca,disss"
            }),
        ),
    ];
    // The eighth (§5.2 thought-experiment) variant rides along for free.
    cases.push((
        "BKLW+JL",
        BklwJl::new(p.clone()).into_stage_pipeline(),
        stages(if quantized {
            "dispca,qt,jl,disss"
        } else {
            "dispca,jl,disss"
        }),
    ));
    cases
}

#[test]
fn all_seven_paper_pipelines_bit_identical_through_the_engine() {
    let data = workload(1);
    let p = params(&data, false);
    for (label, named, listed) in named_vs_stages(&p, false) {
        assert_identical(label, run(&named, &data), run(&listed, &data));
    }
}

#[test]
fn quantized_variants_bit_identical_through_the_engine() {
    let data = workload(2);
    let p = params(&data, true);
    for (label, named, listed) in named_vs_stages(&p, true) {
        assert_identical(label, run(&named, &data), run(&listed, &data));
    }
}

#[test]
fn reruns_are_deterministic() {
    let data = workload(3);
    let p = params(&data, false);
    for (label, named, _) in named_vs_stages(&p, false) {
        assert_identical(label, run(&named, &data), run(&named, &data));
    }
}

#[test]
fn parallel_execution_matches_sequential_for_every_pipeline() {
    let data = workload(4);
    let p = params(&data, false);
    for (label, named, _) in named_vs_stages(&p, false) {
        let seq = named.clone().with_parallel(false);
        assert_identical(label, run(&named, &data), run(&seq, &data));
    }
}

/// The streaming compositions this suite locks down: per-source
/// merge-and-reduce summaries composed with DR before and DR/QT after.
const STREAM_LISTS: [&str; 4] = ["stream", "jl,stream,qt", "stream,jl", "jl,stream,jl,qt:8"];

#[test]
fn stream_compositions_are_seed_deterministic() {
    let data = workload(6);
    let p = params(&data, false);
    for list in STREAM_LISTS {
        let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
        assert!(pipe.is_distributed(), "{list} shards per source");
        assert_identical(list, run(&pipe, &data), run(&pipe, &data));
    }
}

#[test]
fn stream_parallel_execution_matches_sequential() {
    let data = workload(7);
    let p = params(&data, false);
    for list in STREAM_LISTS {
        let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
        let seq = pipe.clone().with_parallel(false);
        assert_identical(list, run(&pipe, &data), run(&seq, &data));
    }
}

#[test]
fn stream_composes_with_every_downstream_stage_the_engine_accepts() {
    // Downstream of `stream` the engine accepts exactly the stages that
    // operate on weighted per-source summaries: jl and qt. A second CR
    // stage or an interactive protocol is a configuration error.
    let data = workload(8);
    let p = params(&data, false);
    for (list, ok) in [
        ("stream,jl", true),
        ("stream,qt", true),
        ("stream,jl,qt:6", true),
        ("stream,fss", false),
        ("stream,stream", false),
        ("stream,dispca", false),
        ("stream,disss", false),
    ] {
        let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
        let shards = partition_uniform(&data, SOURCES, pipe.params().seed).unwrap();
        let mut net = Network::new(SOURCES);
        assert_eq!(
            pipe.run_shards(&shards, &mut net).is_ok(),
            ok,
            "{list}: acceptance changed"
        );
    }
}

#[test]
fn engine_names_match_paper_legends() {
    let data = workload(5);
    let p = params(&data, false);
    let expected = [
        "NR",
        "FSS",
        "JL+FSS",
        "FSS+JL",
        "JL+FSS+JL",
        "BKLW",
        "JL+BKLW",
        "BKLW+JL",
    ];
    for ((_, named, _), want) in named_vs_stages(&p, false).into_iter().zip(expected) {
        assert_eq!(named.name(), want);
    }
    let pq = params(&data, true);
    for ((_, named, _), want) in named_vs_stages(&pq, true).into_iter().zip(expected) {
        assert_eq!(named.name(), format!("{want}+QT").replace("NR+QT", "NR"));
    }
}
