//! Transport-equivalence tests: a pipeline run over real loopback-TCP
//! processes (threads here; the `distributed_e2e` CI job uses actual
//! processes) must be indistinguishable from the in-process `Network`
//! simulation — the same `NetworkStats` to the bit (total, per-source,
//! per message kind) and bit-identical centers — for every named paper
//! pipeline and for arbitrary `--stages` compositions.
//!
//! The TCP backend additionally *verifies* equivalence at runtime: the
//! server checks every received frame byte-for-byte against its
//! replicated local encoding, and both ends exchange a run digest at
//! shutdown, so a passing run is a proof, not a coincidence.

use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::net::tcp::{RunDigest, TcpServerBinding, TcpSource};
use edge_kmeans::net::{NetworkStats, Transport};
use edge_kmeans::prelude::*;
use std::time::Duration;

const SOURCES: usize = 4;
const FP: u64 = 0x7E57_C0DE;

fn workload(seed: u64) -> Matrix {
    let ds = MnistLike::new(360, 8).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

fn params(data: &Matrix) -> SummaryParams {
    let (n, d) = data.shape();
    SummaryParams::practical(2, n, d).with_seed(23)
}

/// The per-source shards a pipeline runs over: the whole dataset for a
/// single-source pipeline, a uniform partition otherwise.
fn shards(pipe: &StagePipeline, data: &Matrix) -> (Vec<Matrix>, usize) {
    if pipe.is_distributed() {
        let parts = partition_uniform(data, SOURCES, pipe.params().seed).unwrap();
        (parts, SOURCES)
    } else {
        (vec![data.clone()], 1)
    }
}

/// Runs `pipe` over the in-process simulation.
fn run_simulated(pipe: &StagePipeline, parts: &[Matrix], m: usize) -> (RunOutput, NetworkStats) {
    let mut net = Network::new(m);
    let out = pipe.run_shards(parts, &mut net).unwrap();
    (out, net.stats().clone())
}

/// Runs `pipe` over loopback TCP: one server transport plus `m` source
/// transports, each on its own thread with its own connection, all
/// finishing with the digest exchange. Returns the server's view and
/// every source process's statistics.
fn run_tcp(
    pipe: &StagePipeline,
    parts: &[Matrix],
    m: usize,
) -> (RunOutput, NetworkStats, Vec<NetworkStats>) {
    let binding = TcpServerBinding::bind("127.0.0.1:0").unwrap();
    let addr = binding.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let mut net = binding.accept(m, FP).unwrap();
            let out = pipe.run_shards(parts, &mut net).unwrap();
            let digest = RunDigest::new(net.stats(), &out.centers);
            net.finish(digest).unwrap();
            (out, net.stats().clone())
        });
        let sources: Vec<_> = (0..m)
            .map(|i| {
                scope.spawn(move || {
                    let mut net =
                        TcpSource::connect(addr, i, m, FP, Duration::from_secs(20)).unwrap();
                    let out = pipe.run_shards(parts, &mut net).unwrap();
                    let digest = RunDigest::new(net.stats(), &out.centers);
                    net.finish(digest).unwrap();
                    net.stats().clone()
                })
            })
            .collect();
        let (out, stats) = server.join().unwrap();
        let source_stats = sources.into_iter().map(|s| s.join().unwrap()).collect();
        (out, stats, source_stats)
    })
}

/// The core assertion: TCP and simulation agree exactly.
fn assert_transport_equivalent(label: &str, pipe: &StagePipeline, data: &Matrix) {
    let (parts, m) = shards(pipe, data);
    let (sim_out, sim_stats) = run_simulated(pipe, &parts, m);
    let (tcp_out, tcp_stats, source_stats) = run_tcp(pipe, &parts, m);

    assert_eq!(
        tcp_stats, sim_stats,
        "{label}: server NetworkStats differ from the simulation"
    );
    assert_eq!(tcp_out.uplink_bits, sim_out.uplink_bits, "{label}: uplink");
    assert_eq!(
        tcp_out.downlink_bits, sim_out.downlink_bits,
        "{label}: downlink"
    );
    assert_eq!(
        tcp_out.summary_points, sim_out.summary_points,
        "{label}: summary size"
    );
    assert_eq!(
        tcp_out.source_ops, sim_out.source_ops,
        "{label}: operation counts"
    );
    for i in 0..m {
        assert_eq!(
            tcp_stats.uplink_bits(i),
            sim_stats.uplink_bits(i),
            "{label}: per-source bits, source {i}"
        );
    }
    assert_eq!(
        tcp_stats.uplink_bits_by_kind(),
        sim_stats.uplink_bits_by_kind(),
        "{label}: by-kind breakdown"
    );
    // Centers bit-identical, not approximately equal.
    assert_eq!(tcp_out.centers.shape(), sim_out.centers.shape(), "{label}");
    for (a, b) in tcp_out
        .centers
        .as_slice()
        .iter()
        .zip(sim_out.centers.as_slice())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: centers diverge");
    }
    // Every source process observed the same totals as the server (its
    // local echoes replicate the other sources exactly).
    for (i, s) in source_stats.iter().enumerate() {
        assert_eq!(
            s, &sim_stats,
            "{label}: source process {i} stats differ from the simulation"
        );
    }
}

fn named(name: &str, p: &SummaryParams) -> StagePipeline {
    let p = p.clone();
    match name {
        "NR" => NoReduction::new(p).into_stage_pipeline(),
        "FSS" => Fss::new(p).into_stage_pipeline(),
        "JL+FSS" => JlFss::new(p).into_stage_pipeline(),
        "FSS+JL" => FssJl::new(p).into_stage_pipeline(),
        "JL+FSS+JL" => JlFssJl::new(p).into_stage_pipeline(),
        "BKLW" => Bklw::new(p).into_stage_pipeline(),
        "JL+BKLW" => JlBklw::new(p).into_stage_pipeline(),
        "BKLW+JL" => BklwJl::new(p).into_stage_pipeline(),
        other => panic!("unknown pipeline {other}"),
    }
}

#[test]
fn centralized_named_pipelines_are_transport_equivalent() {
    let data = workload(1);
    let p = params(&data);
    for name in ["NR", "FSS", "JL+FSS", "FSS+JL", "JL+FSS+JL"] {
        assert_transport_equivalent(name, &named(name, &p), &data);
    }
}

#[test]
fn distributed_named_pipelines_are_transport_equivalent() {
    let data = workload(2);
    let p = params(&data);
    for name in ["BKLW", "JL+BKLW", "BKLW+JL"] {
        assert_transport_equivalent(name, &named(name, &p), &data);
    }
}

#[test]
fn quantized_pipelines_are_transport_equivalent() {
    let data = workload(3);
    let q = RoundingQuantizer::new(8).unwrap();
    let p = params(&data).with_quantizer(q);
    for name in ["JL+FSS+JL", "BKLW"] {
        assert_transport_equivalent(&format!("{name}+QT"), &named(name, &p), &data);
    }
}

#[test]
fn arbitrary_stage_compositions_are_transport_equivalent() {
    let data = workload(4);
    let p = params(&data);
    // One centralized and one distributed composition the paper never
    // evaluated, exactly as `--stages` would build them.
    for list in ["jl,fss,qt:6,jl", "jl,dispca,qt:9,disss"] {
        let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
        assert_transport_equivalent(list, &pipe, &data);
    }
}

#[test]
fn streaming_compositions_are_transport_equivalent() {
    // Per-source merge-and-reduce summaries over loopback TCP are
    // byte-identical to the in-process runs, composed with DR before and
    // DR/QT after, with and without quantization.
    let data = workload(6);
    let p = params(&data);
    for list in ["jl,stream,qt:8", "stream,jl", "stream"] {
        let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
        assert!(pipe.is_distributed(), "{list} shards per source");
        assert_transport_equivalent(list, &pipe, &data);
    }
}

#[test]
fn f32_aux_precision_is_transport_equivalent() {
    // The F32 wire variant changes the payloads (and the bits), so it
    // must survive the byte-equality divergence checks too.
    let data = workload(7);
    let p = params(&data).with_precision(edge_kmeans::net::wire::Precision::F32);
    for name in ["FSS", "JL+FSS", "BKLW"] {
        assert_transport_equivalent(&format!("{name}/f32"), &named(name, &p), &data);
    }
}

#[test]
fn sequential_and_parallel_tcp_runs_are_equivalent_too() {
    // The divergence checks must hold regardless of worker scheduling on
    // either end: run the server parallel and the sources sequential.
    let data = workload(5);
    let pipe = StagePipeline::from_names("dispca,disss", params(&data)).unwrap();
    let (parts, m) = shards(&pipe, &data);
    let sequential = pipe.clone().with_parallel(false);

    let binding = TcpServerBinding::bind("127.0.0.1:0").unwrap();
    let addr = binding.local_addr().unwrap();
    let (out, stats) = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let mut net = binding.accept(m, FP).unwrap();
            let out = pipe.run_shards(&parts, &mut net).unwrap();
            let digest = RunDigest::new(net.stats(), &out.centers);
            net.finish(digest).unwrap();
            (out, net.stats().clone())
        });
        for i in 0..m {
            let seq = &sequential;
            let parts = &parts;
            scope.spawn(move || {
                let mut net = TcpSource::connect(addr, i, m, FP, Duration::from_secs(20)).unwrap();
                let out = seq.run_shards(parts, &mut net).unwrap();
                let digest = RunDigest::new(net.stats(), &out.centers);
                net.finish(digest).unwrap();
            });
        }
        server.join().unwrap()
    });
    let (sim_out, sim_stats) = run_simulated(&pipe, &parts, m);
    assert_eq!(stats, sim_stats);
    assert_eq!(out.uplink_bits, sim_out.uplink_bits);
}
