//! Transport-equivalence tests: every execution model of a pipeline
//! must be indistinguishable from the in-process `Network` simulation —
//! the same `NetworkStats` to the bit (total, per-source, per message
//! kind), bit-identical centers, and equal deterministic op counts —
//! for every named paper pipeline and for arbitrary `--stages`
//! compositions. Three models are proven here:
//!
//! * the replicated loopback-TCP backend (`tcp::TcpServer`/`TcpSource`,
//!   the `--replicated-check` debug mode), which additionally verifies
//!   byte equality frame by frame at runtime;
//! * the **server-driven channel backend** (`run_channel`): a driver
//!   thread plus one executor thread per source, each holding only its
//!   shard;
//! * the **event-driven TCP protocol backend** (`ekm_net::event`): the
//!   same driver/executors over real non-blocking sockets, the server
//!   multiplexing every connection in one thread.
//!
//! The non-replicated models also prove *isolation*: a source's entire
//! downlink is the basis broadcast and the sample allocation — it never
//! receives any other source's shard (asserted on the bytes and message
//! kinds each executor observed).

use edge_kmeans::core::executor::SourceExecutor;
use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::net::event::{EventServerBinding, EventTcpSource};
use edge_kmeans::net::tcp::{RunDigest, TcpServerBinding, TcpSource};
use edge_kmeans::net::{CommandTransport, NetworkStats, Transport};
use edge_kmeans::prelude::*;
use std::time::Duration;

const SOURCES: usize = 4;
const FP: u64 = 0x7E57_C0DE;

fn workload(seed: u64) -> Matrix {
    let ds = MnistLike::new(360, 8).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

/// `EKM_COMPUTE=f32` reruns the whole equivalence matrix under the f32
/// distance kernels: transports must agree with the simulation at either
/// compute precision (f64 stays the default leg).
fn params(data: &Matrix) -> SummaryParams {
    let (n, d) = data.shape();
    let mut p = SummaryParams::practical(2, n, d).with_seed(23);
    if std::env::var("EKM_COMPUTE").as_deref() == Ok("f32") {
        p = p.with_compute(edge_kmeans::net::wire::Compute::F32);
    }
    p
}

/// The per-source shards a pipeline runs over: the whole dataset for a
/// single-source pipeline, a uniform partition otherwise.
fn shards(pipe: &StagePipeline, data: &Matrix) -> (Vec<Matrix>, usize) {
    if pipe.is_distributed() {
        let parts = partition_uniform(data, SOURCES, pipe.params().seed).unwrap();
        (parts, SOURCES)
    } else {
        (vec![data.clone()], 1)
    }
}

/// Runs `pipe` over the in-process simulation.
fn run_simulated(pipe: &StagePipeline, parts: &[Matrix], m: usize) -> (RunOutput, NetworkStats) {
    let mut net = Network::new(m);
    let out = pipe.run_shards(parts, &mut net).unwrap();
    (out, net.stats().clone())
}

/// Runs `pipe` over loopback TCP: one server transport plus `m` source
/// transports, each on its own thread with its own connection, all
/// finishing with the digest exchange. Returns the server's view and
/// every source process's statistics.
fn run_tcp(
    pipe: &StagePipeline,
    parts: &[Matrix],
    m: usize,
) -> (RunOutput, NetworkStats, Vec<NetworkStats>) {
    let binding = TcpServerBinding::bind("127.0.0.1:0").unwrap();
    let addr = binding.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let mut net = binding.accept(m, FP).unwrap();
            let out = pipe.run_shards(parts, &mut net).unwrap();
            let digest = RunDigest::new(net.stats(), &out.centers);
            net.finish(digest).unwrap();
            (out, net.stats().clone())
        });
        let sources: Vec<_> = (0..m)
            .map(|i| {
                scope.spawn(move || {
                    let mut net =
                        TcpSource::connect(addr, i, m, FP, Duration::from_secs(20)).unwrap();
                    let out = pipe.run_shards(parts, &mut net).unwrap();
                    let digest = RunDigest::new(net.stats(), &out.centers);
                    net.finish(digest).unwrap();
                    net.stats().clone()
                })
            })
            .collect();
        let (out, stats) = server.join().unwrap();
        let source_stats = sources.into_iter().map(|s| s.join().unwrap()).collect();
        (out, stats, source_stats)
    })
}

/// The core assertion: TCP and simulation agree exactly.
fn assert_transport_equivalent(label: &str, pipe: &StagePipeline, data: &Matrix) {
    let (parts, m) = shards(pipe, data);
    let (sim_out, sim_stats) = run_simulated(pipe, &parts, m);
    let (tcp_out, tcp_stats, source_stats) = run_tcp(pipe, &parts, m);

    assert_eq!(
        tcp_stats, sim_stats,
        "{label}: server NetworkStats differ from the simulation"
    );
    assert_eq!(tcp_out.uplink_bits, sim_out.uplink_bits, "{label}: uplink");
    assert_eq!(
        tcp_out.downlink_bits, sim_out.downlink_bits,
        "{label}: downlink"
    );
    assert_eq!(
        tcp_out.summary_points, sim_out.summary_points,
        "{label}: summary size"
    );
    assert_eq!(
        tcp_out.source_ops, sim_out.source_ops,
        "{label}: operation counts"
    );
    for i in 0..m {
        assert_eq!(
            tcp_stats.uplink_bits(i),
            sim_stats.uplink_bits(i),
            "{label}: per-source bits, source {i}"
        );
    }
    assert_eq!(
        tcp_stats.uplink_bits_by_kind(),
        sim_stats.uplink_bits_by_kind(),
        "{label}: by-kind breakdown"
    );
    // Centers bit-identical, not approximately equal.
    assert_eq!(tcp_out.centers.shape(), sim_out.centers.shape(), "{label}");
    for (a, b) in tcp_out
        .centers
        .as_slice()
        .iter()
        .zip(sim_out.centers.as_slice())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: centers diverge");
    }
    // Every source process observed the same totals as the server (its
    // local echoes replicate the other sources exactly).
    for (i, s) in source_stats.iter().enumerate() {
        assert_eq!(
            s, &sim_stats,
            "{label}: source process {i} stats differ from the simulation"
        );
    }
}

/// Runs `pipe` over the event-driven TCP protocol backend: the driver
/// in the calling thread over real loopback sockets, one executor
/// thread per source — each constructed with **only its own shard**.
fn run_event_tcp(
    pipe: &StagePipeline,
    parts: Vec<Matrix>,
) -> (RunOutput, NetworkStats, Vec<SourceRunReport>) {
    let m = parts.len();
    let binding = EventServerBinding::bind("127.0.0.1:0").unwrap();
    let addr = binding.local_addr().unwrap();
    std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                scope.spawn(move || {
                    let mut endpoint =
                        EventTcpSource::connect(addr, i, m, FP, Duration::from_secs(20)).unwrap();
                    SourceExecutor::new(pipe.stages(), pipe.params(), i, m, shard)
                        .serve(&mut endpoint)
                        .unwrap()
                })
            })
            .collect();
        let mut net = binding.accept(m, FP).unwrap();
        let out = pipe.run_driver(&mut net).unwrap();
        let reports = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (out, net.stats().clone(), reports)
    })
}

/// The non-replicated assertion: protocol outputs equal the simulation
/// bit for bit, and every source saw only control traffic plus the two
/// legitimate downlink payloads.
fn assert_protocol_equivalent(
    label: &str,
    pipe: &StagePipeline,
    data: &Matrix,
    run: impl FnOnce(Vec<Matrix>) -> (RunOutput, NetworkStats, Vec<SourceRunReport>),
) {
    let (parts, m) = shards(pipe, data);
    let (sim_out, sim_stats) = run_simulated(pipe, &parts, m);
    let shard_bits: Vec<u64> = parts
        .iter()
        .map(|p| (p.rows() * p.cols() * 64) as u64)
        .collect();
    let (out, stats, reports) = run(parts);

    assert_eq!(
        stats, sim_stats,
        "{label}: driver NetworkStats differ from the simulation"
    );
    assert_eq!(out.uplink_bits, sim_out.uplink_bits, "{label}: uplink");
    assert_eq!(
        out.downlink_bits, sim_out.downlink_bits,
        "{label}: downlink"
    );
    assert_eq!(out.source_ops, sim_out.source_ops, "{label}: op counts");
    assert_eq!(
        out.summary_points, sim_out.summary_points,
        "{label}: summary size"
    );
    for (a, b) in out
        .centers
        .as_slice()
        .iter()
        .zip(sim_out.centers.as_slice())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: centers diverge");
    }

    assert_eq!(reports.len(), m);
    for (i, report) in reports.iter().enumerate() {
        // Per-source accounting: what the executor observed equals the
        // driver's ledger and the simulation's.
        assert_eq!(
            report.uplink_bits,
            sim_stats.uplink_bits(i),
            "{label}: source {i} uplink"
        );
        assert_eq!(
            report.downlink_bits,
            sim_stats.downlink_bits(i),
            "{label}: source {i} downlink"
        );
        // Isolation: the only data-plane payloads a source ever
        // receives are the disPCA basis and the disSS allocation —
        // never raw data or another source's coreset.
        for kind in report.downlink_kinds.keys() {
            assert!(
                matches!(*kind, "basis" | "sample-allocation"),
                "{label}: source {i} received a {kind} payload"
            );
        }
        // And in bytes: every other source's shard is bigger than this
        // source's entire downlink, so no shard can have crossed.
        for (j, &bits) in shard_bits.iter().enumerate() {
            if j != i {
                assert!(
                    report.downlink_bits < bits,
                    "{label}: source {i} received {} bits, source {j}'s shard is {} bits",
                    report.downlink_bits,
                    bits
                );
            }
        }
    }
}

fn named(name: &str, p: &SummaryParams) -> StagePipeline {
    let p = p.clone();
    match name {
        "NR" => NoReduction::new(p).into_stage_pipeline(),
        "FSS" => Fss::new(p).into_stage_pipeline(),
        "JL+FSS" => JlFss::new(p).into_stage_pipeline(),
        "FSS+JL" => FssJl::new(p).into_stage_pipeline(),
        "JL+FSS+JL" => JlFssJl::new(p).into_stage_pipeline(),
        "BKLW" => Bklw::new(p).into_stage_pipeline(),
        "JL+BKLW" => JlBklw::new(p).into_stage_pipeline(),
        "BKLW+JL" => BklwJl::new(p).into_stage_pipeline(),
        other => panic!("unknown pipeline {other}"),
    }
}

#[test]
fn centralized_named_pipelines_are_transport_equivalent() {
    let data = workload(1);
    let p = params(&data);
    for name in ["NR", "FSS", "JL+FSS", "FSS+JL", "JL+FSS+JL"] {
        assert_transport_equivalent(name, &named(name, &p), &data);
    }
}

#[test]
fn distributed_named_pipelines_are_transport_equivalent() {
    let data = workload(2);
    let p = params(&data);
    for name in ["BKLW", "JL+BKLW", "BKLW+JL"] {
        assert_transport_equivalent(name, &named(name, &p), &data);
    }
}

#[test]
fn quantized_pipelines_are_transport_equivalent() {
    let data = workload(3);
    let q = RoundingQuantizer::new(8).unwrap();
    let p = params(&data).with_quantizer(q);
    for name in ["JL+FSS+JL", "BKLW"] {
        assert_transport_equivalent(&format!("{name}+QT"), &named(name, &p), &data);
    }
}

#[test]
fn arbitrary_stage_compositions_are_transport_equivalent() {
    let data = workload(4);
    let p = params(&data);
    // One centralized and one distributed composition the paper never
    // evaluated, exactly as `--stages` would build them.
    for list in ["jl,fss,qt:6,jl", "jl,dispca,qt:9,disss"] {
        let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
        assert_transport_equivalent(list, &pipe, &data);
    }
}

#[test]
fn streaming_compositions_are_transport_equivalent() {
    // Per-source merge-and-reduce summaries over loopback TCP are
    // byte-identical to the in-process runs, composed with DR before and
    // DR/QT after, with and without quantization.
    let data = workload(6);
    let p = params(&data);
    for list in ["jl,stream,qt:8", "stream,jl", "stream"] {
        let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
        assert!(pipe.is_distributed(), "{list} shards per source");
        assert_transport_equivalent(list, &pipe, &data);
    }
}

#[test]
fn f32_aux_precision_is_transport_equivalent() {
    // The F32 wire variant changes the payloads (and the bits), so it
    // must survive the byte-equality divergence checks too.
    let data = workload(7);
    let p = params(&data).with_precision(edge_kmeans::net::wire::Precision::F32);
    for name in ["FSS", "JL+FSS", "BKLW"] {
        assert_transport_equivalent(&format!("{name}/f32"), &named(name, &p), &data);
    }
}

#[test]
fn channel_protocol_matches_simulation_for_named_pipelines() {
    let data = workload(8);
    let p = params(&data);
    for name in [
        "NR",
        "FSS",
        "JL+FSS",
        "FSS+JL",
        "JL+FSS+JL",
        "BKLW",
        "JL+BKLW",
        "BKLW+JL",
    ] {
        let pipe = named(name, &p);
        assert_protocol_equivalent(&format!("channel/{name}"), &pipe, &data, |parts| {
            let (out, stats, reports) = pipe.run_channel_detailed(parts).unwrap();
            (out, stats, reports)
        });
    }
}

#[test]
fn channel_protocol_matches_simulation_for_stage_compositions() {
    // Sampled points of the composition space, mirroring what
    // `--stages` builds: quantized, doubly-projected, streaming, and
    // f32-auxiliary variants.
    let data = workload(9);
    let p = params(&data);
    let f32p = p
        .clone()
        .with_precision(edge_kmeans::net::wire::Precision::F32);
    for (list, p) in [
        ("jl,fss,qt:6,jl", &p),
        ("jl,dispca,qt:9,disss", &p),
        ("jl,stream,qt:8", &p),
        ("stream,jl", &p),
        ("dispca,disss", &f32p),
        ("jl,stream", &f32p),
    ] {
        let pipe = StagePipeline::from_names(list, (*p).clone()).unwrap();
        assert_protocol_equivalent(&format!("channel/{list}"), &pipe, &data, |parts| {
            let (out, stats, reports) = pipe.run_channel_detailed(parts).unwrap();
            (out, stats, reports)
        });
    }
}

#[test]
fn event_tcp_protocol_matches_simulation_for_named_pipelines() {
    let data = workload(10);
    let p = params(&data);
    for name in ["NR", "JL+FSS+JL", "BKLW", "JL+BKLW"] {
        let pipe = named(name, &p);
        assert_protocol_equivalent(&format!("event-tcp/{name}"), &pipe, &data, |parts| {
            run_event_tcp(&pipe, parts)
        });
    }
}

#[test]
fn event_tcp_protocol_matches_simulation_for_stage_compositions() {
    let data = workload(11);
    let q = RoundingQuantizer::new(8).unwrap();
    let p = params(&data).with_quantizer(q);
    for list in ["jl,dispca,disss", "jl,stream,qt:8", "jl,fss,qt:6,jl"] {
        let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
        assert_protocol_equivalent(&format!("event-tcp/{list}"), &pipe, &data, |parts| {
            run_event_tcp(&pipe, parts)
        });
    }
}

#[test]
fn sequential_and_parallel_tcp_runs_are_equivalent_too() {
    // The divergence checks must hold regardless of worker scheduling on
    // either end: run the server parallel and the sources sequential.
    let data = workload(5);
    let pipe = StagePipeline::from_names("dispca,disss", params(&data)).unwrap();
    let (parts, m) = shards(&pipe, &data);
    let sequential = pipe.clone().with_parallel(false);

    let binding = TcpServerBinding::bind("127.0.0.1:0").unwrap();
    let addr = binding.local_addr().unwrap();
    let (out, stats) = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let mut net = binding.accept(m, FP).unwrap();
            let out = pipe.run_shards(&parts, &mut net).unwrap();
            let digest = RunDigest::new(net.stats(), &out.centers);
            net.finish(digest).unwrap();
            (out, net.stats().clone())
        });
        for i in 0..m {
            let seq = &sequential;
            let parts = &parts;
            scope.spawn(move || {
                let mut net = TcpSource::connect(addr, i, m, FP, Duration::from_secs(20)).unwrap();
                let out = seq.run_shards(parts, &mut net).unwrap();
                let digest = RunDigest::new(net.stats(), &out.centers);
                net.finish(digest).unwrap();
            });
        }
        server.join().unwrap()
    });
    let (sim_out, sim_stats) = run_simulated(&pipe, &parts, m);
    assert_eq!(stats, sim_stats);
    assert_eq!(out.uplink_bits, sim_out.uplink_bits);
}
