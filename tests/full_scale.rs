//! Paper-scale validation, ignored by default (minutes to hours).
//!
//! Run with:
//!
//! ```bash
//! cargo test --release --test full_scale -- --ignored --nocapture
//! ```
//!
//! These reproduce the paper's operating point (MNIST-scale shapes) where
//! the scale coupling documented in EXPERIMENTS.md disappears and the
//! normalized costs of the JL pipelines approach the paper's 1.0x values.

use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::prelude::*;

#[test]
#[ignore = "paper-scale run (tens of minutes); invoke with --ignored"]
fn paper_scale_mnist_single_source() {
    let ds = MnistLike::new(60_000, 28).with_seed(1).generate().unwrap();
    let (data, _) = normalize_paper(&ds.points);
    let (n, d) = data.shape();
    assert_eq!((n, d), (60_000, 784));

    let reference = evaluation::reference(&data, 2, 3, 1).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(2);
    println!(
        "paper scale params: coreset {}, pca {}, jl {} -> {}",
        params.coreset_size, params.pca_dim, params.jl_dim_before, params.jl_dim_after
    );

    let mut net = Network::new(1);
    for pipe in [
        Box::new(JlFss::new(params.clone())) as Box<dyn CentralizedPipeline>,
        Box::new(JlFssJl::new(params.clone())),
    ] {
        let out = pipe.run(&data, &mut net).unwrap();
        let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
        let comm = out.normalized_comm(n, d);
        println!(
            "{}: cost {nc:.4}, comm {comm:.3e}, source {:.2}s",
            pipe.name(),
            out.source_seconds
        );
        // At paper scale the lift loss shrinks: Fig 1(a)'s regime.
        assert!(nc < 1.15, "{}: normalized cost {nc}", pipe.name());
        // Table 3's regime: well under 1% of the raw bits.
        assert!(comm < 0.02, "{}: comm {comm}", pipe.name());
    }
}

#[test]
#[ignore = "paper-scale distributed run; invoke with --ignored"]
fn paper_scale_distributed() {
    let ds = MnistLike::new(60_000, 28).with_seed(3).generate().unwrap();
    let (data, _) = normalize_paper(&ds.points);
    let (n, d) = data.shape();
    let shards = edge_kmeans::data::partition::partition_uniform(&data, 10, 4).unwrap();
    let reference = evaluation::reference(&data, 2, 3, 2).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(5);

    let mut net = Network::new(10);
    let out = JlBklw::new(params).run(&shards, &mut net).unwrap();
    let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
    let comm = out.normalized_comm(n, d);
    println!("JL+BKLW @ paper scale: cost {nc:.4}, comm {comm:.3e}");
    assert!(nc < 1.15, "normalized cost {nc}");
    assert!(comm < 0.05, "comm {comm}");
}
