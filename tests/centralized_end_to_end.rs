//! End-to-end integration tests for the single-source pipelines on the
//! paper-regime workloads (§7.2, Figure 1 / Table 3 conditions, scaled).

use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::neurips_like::NeurIpsLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::prelude::*;

fn mnist_like_small(n: usize, side: usize, seed: u64) -> Matrix {
    let ds = MnistLike::new(n, side).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

fn neurips_like_small(n: usize, d: usize, seed: u64) -> Matrix {
    let ds = NeurIpsLike::new(n, d).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

fn pipelines(p: &SummaryParams) -> Vec<Box<dyn CentralizedPipeline>> {
    vec![
        Box::new(Fss::new(p.clone())),
        Box::new(JlFss::new(p.clone())),
        Box::new(FssJl::new(p.clone())),
        Box::new(JlFssJl::new(p.clone())),
    ]
}

#[test]
fn figure1_regime_mnist_like_costs_near_one() {
    let data = mnist_like_small(1500, 14, 1);
    let (n, d) = data.shape();
    let reference = evaluation::reference(&data, 2, 5, 1).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(5);
    for pipe in pipelines(&params) {
        let mut net = Network::new(1);
        let out = pipe.run(&data, &mut net).unwrap();
        let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
        // Paper Fig. 1(a) reports ≤ 1.09 at full MNIST scale. At reduced
        // scale the post-CR JL dimension is a much smaller fraction of d
        // (to keep the paper's communication ratios), which inflates the
        // Π⁺ center-lift loss to ≈ (1 − d''/d)·(k1/k2 − 1); see
        // EXPERIMENTS.md "Scale coupling". 1.35 bounds that regime.
        assert!(
            nc < 1.35,
            "{}: normalized cost {nc} too far from 1",
            pipe.name()
        );
        assert!(
            nc > 0.95,
            "{}: normalized cost {nc} suspiciously low",
            pipe.name()
        );
    }
}

#[test]
fn figure1_regime_neurips_like_costs_near_one() {
    let data = neurips_like_small(1200, 400, 2);
    let (n, d) = data.shape();
    let reference = evaluation::reference(&data, 2, 5, 2).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(6);
    for pipe in pipelines(&params) {
        let mut net = Network::new(1);
        let out = pipe.run(&data, &mut net).unwrap();
        let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
        // Paper Fig. 1(b) reaches 1.25 on the real NeurIPS data; the
        // reduced-scale lift loss adds a bit more (see above).
        assert!(nc < 1.4, "{}: normalized cost {nc}", pipe.name());
    }
}

#[test]
fn table3_shape_all_reductions_below_percent_of_raw() {
    // Table 3: every summary method transmits < 1% of the raw dataset at
    // paper scale; at our reduced scale the coreset is a larger fraction,
    // but must still be a drastic (>90%) reduction and the JL methods must
    // beat plain FSS.
    let data = mnist_like_small(2500, 14, 3);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d).with_seed(7);
    let mut comm = std::collections::HashMap::new();
    for pipe in pipelines(&params) {
        let mut net = Network::new(1);
        let out = pipe.run(&data, &mut net).unwrap();
        comm.insert(pipe.name(), out.normalized_comm(n, d));
    }
    for (name, c) in &comm {
        assert!(
            *c < 0.1,
            "{name}: normalized comm {c} not a drastic reduction"
        );
    }
    assert!(comm["JL+FSS"] < comm["FSS"], "JL+FSS must beat FSS on comm");
    assert!(comm["FSS+JL"] < comm["FSS"], "FSS+JL must beat FSS on comm");
    assert!(
        comm["JL+FSS+JL"] <= comm["JL+FSS"] + 1e-12,
        "JL+FSS+JL must not exceed JL+FSS on comm"
    );
}

#[test]
fn running_time_ordering_on_wide_data() {
    // Table 2 complexity column: for d large, the JL-first pipelines are
    // much cheaper at the source than the exact-SVD-first ones. Compared
    // on deterministic operation counts (`source_ops`), not wall-clock —
    // wall-clock 2× ratios flake under parallel test load.
    let data = neurips_like_small(800, 600, 4);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d).with_seed(8);
    let mut net = Network::new(1);
    let jlfss = JlFss::new(params.clone()).run(&data, &mut net).unwrap();
    let fssjl = FssJl::new(params.clone()).run(&data, &mut net).unwrap();
    let jlfssjl = JlFssJl::new(params).run(&data, &mut net).unwrap();
    assert!(
        jlfss.source_ops * 2 < fssjl.source_ops,
        "JL+FSS {} vs FSS+JL {} ops",
        jlfss.source_ops,
        fssjl.source_ops
    );
    assert!(
        jlfssjl.source_ops * 2 < fssjl.source_ops,
        "JL+FSS+JL {} vs FSS+JL {} ops",
        jlfssjl.source_ops,
        fssjl.source_ops
    );
}

#[test]
fn centers_live_in_original_space_and_are_finite() {
    let data = mnist_like_small(800, 12, 5);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d).with_seed(9);
    for pipe in pipelines(&params) {
        let mut net = Network::new(1);
        let out = pipe.run(&data, &mut net).unwrap();
        assert_eq!(out.centers.shape(), (2, d), "{}", pipe.name());
        assert!(
            out.centers.as_slice().iter().all(|v| v.is_finite()),
            "{}: non-finite center coordinates",
            pipe.name()
        );
    }
}

#[test]
fn different_seeds_give_different_summaries_same_quality() {
    let data = mnist_like_small(1000, 12, 6);
    let (n, d) = data.shape();
    let reference = evaluation::reference(&data, 2, 5, 3).unwrap();
    let mut costs = Vec::new();
    for seed in [10u64, 20, 30] {
        let params = SummaryParams::practical(2, n, d).with_seed(seed);
        let mut net = Network::new(1);
        let out = JlFssJl::new(params).run(&data, &mut net).unwrap();
        costs.push(evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap());
    }
    // Monte-Carlo spread exists but every run is good.
    for c in &costs {
        assert!(*c < 1.4, "cost {c}");
    }
}

#[test]
fn no_reduction_baseline_matches_reference() {
    let data = mnist_like_small(600, 10, 7);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d)
        .with_seed(1)
        .with_kmeans_restarts(5);
    let mut net = Network::new(1);
    let out = NoReduction::new(params).run(&data, &mut net).unwrap();
    let reference = evaluation::reference(&data, 2, 5, 1).unwrap();
    let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
    assert!((nc - 1.0).abs() < 0.05, "NR normalized cost {nc}");
    // And NR's comm is the raw dataset (within header overhead).
    let norm_comm = out.normalized_comm(n, d);
    assert!((1.0..1.01).contains(&norm_comm), "NR comm {norm_comm}");
}
