//! Property-based cross-crate tests of the theory invariants the paper's
//! analysis rests on.

use edge_kmeans::clustering::cost::cost;
use edge_kmeans::coreset::FssBuilder;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::prelude::*;
use proptest::prelude::*;

fn mixture(n: usize, d: usize, k: usize, seed: u64) -> Matrix {
    let raw = GaussianMixture::new(n, d, k)
        .with_separation(4.0)
        .with_seed(seed)
        .generate()
        .unwrap()
        .points;
    normalize_paper(&raw).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Definition 3.2: the FSS coreset preserves the k-means cost of the
    /// dataset for arbitrary center sets, up to a modest factor at our
    /// practical sample sizes.
    #[test]
    fn fss_is_an_approximate_coreset(seed in 0u64..50, centers_seed in 0u64..50) {
        let data = mixture(400, 12, 2, seed);
        let fss = FssBuilder::new(2)
            .with_pca_dim(6)
            .with_sample_size(120)
            .with_seed(seed)
            .build(&data)
            .unwrap();
        let coreset = fss.to_coreset().unwrap();
        let x = ekm_linalg::random::gaussian_matrix(centers_seed, 2, 12, 0.3);
        let truth = cost(&data, &x).unwrap();
        let approx = coreset.cost(&x).unwrap();
        let ratio = approx / truth;
        prop_assert!((0.5..=1.5).contains(&ratio), "coreset distortion {ratio}");
    }

    /// Lemma 4.1 shape: JL projection preserves the k-means cost of the
    /// dataset against fixed centers within a distortion factor.
    #[test]
    fn jl_preserves_kmeans_cost(seed in 0u64..50) {
        let data = mixture(300, 64, 2, seed);
        let pi = JlProjection::generate(JlKind::Gaussian, 64, 32, seed);
        let x = ekm_linalg::random::gaussian_matrix(seed + 1, 2, 64, 0.3);
        let projected_data = pi.project(&data).unwrap();
        let projected_x = pi.project(&x).unwrap();
        let orig = cost(&data, &x).unwrap();
        let proj = cost(&projected_data, &projected_x).unwrap();
        let ratio = proj / orig;
        prop_assert!((0.5..=1.5).contains(&ratio), "JL cost distortion {ratio}");
    }

    /// The deterministic-total sampler keeps Σw = n for any workload.
    #[test]
    fn coreset_weight_conservation(seed in 0u64..100, n in 50usize..300) {
        let data = mixture(n, 6, 2, seed);
        let fss = FssBuilder::new(2)
            .with_pca_dim(4)
            .with_sample_size(30)
            .with_seed(seed)
            .build(&data)
            .unwrap();
        let total: f64 = fss.weights().iter().sum();
        prop_assert!((total - n as f64).abs() < 1e-6, "Σw = {total}, n = {n}");
    }

    /// Quantizing a coreset perturbs its cost by at most the Lipschitz
    /// bound of Theorem 6.1's proof: |cost(S) − cost(S_QT)| ≤ 2·Δ_D·Δ_QT·Σw.
    #[test]
    fn quantized_coreset_cost_lipschitz(seed in 0u64..50, s in 2u32..20) {
        let data = mixture(200, 8, 2, seed);
        let fss = FssBuilder::new(2)
            .with_pca_dim(4)
            .with_sample_size(50)
            .with_seed(seed)
            .build(&data)
            .unwrap();
        let coreset = fss.to_coreset().unwrap();
        let q = RoundingQuantizer::new(s).unwrap();
        let quantized = coreset.map_points(|m| q.quantize_matrix(m)).unwrap();
        let x = ekm_linalg::random::gaussian_matrix(seed + 9, 2, 8, 0.3);
        let c1 = coreset.cost(&x).unwrap();
        let c2 = quantized.cost(&x).unwrap();
        // Diameter of the normalized space with the centers: generous
        // upper bound via max norms.
        let diam = 2.0 * (coreset.points().max_row_norm() + x.max_row_norm());
        let dqt = q.max_error_bound(coreset.points().max_row_norm());
        let bound = 2.0 * diam * dqt * coreset.total_weight() + 1e-9;
        prop_assert!(
            (c1 - c2).abs() <= bound,
            "cost moved {} > Lipschitz bound {bound}",
            (c1 - c2).abs()
        );
    }

    /// Composing the pipeline's own lift with its projections is exact:
    /// π(π⁻¹(X)) = X for the Moore–Penrose inverse.
    #[test]
    fn lift_is_right_inverse(seed in 0u64..100, d in 10usize..60) {
        let dp = (d / 2).max(2);
        let pi = JlProjection::generate(JlKind::Gaussian, d, dp, seed);
        let x = ekm_linalg::random::gaussian_matrix(seed + 3, 3, dp, 1.0);
        let lifted = pi.lift(&x).unwrap();
        let back = pi.project(&lifted).unwrap();
        prop_assert!(back.approx_eq(&x, 1e-6), "π∘π⁻¹ ≠ id");
    }

    /// Theorem 5.1 sanity: projecting onto the disPCA basis never
    /// increases the cost against centers inside the subspace by more than
    /// the residual energy.
    #[test]
    fn pca_projection_cost_shift_bounded_by_residual(seed in 0u64..50) {
        let data = mixture(250, 10, 2, seed);
        let pca = Pca::fit(&data, 4).unwrap();
        let projected = pca.project_into_subspace(&data).unwrap();
        let x_coords = ekm_linalg::random::gaussian_matrix(seed + 5, 2, 4, 0.3);
        let x = pca.lift_coordinates(&x_coords).unwrap();
        let c_orig = cost(&data, &x).unwrap();
        let c_proj = cost(&projected, &x).unwrap();
        // Pythagorean identity: cost(P,X) = cost(P̃,X) + Δ for X in the
        // subspace.
        let delta = pca.residual_sq();
        prop_assert!(
            (c_orig - (c_proj + delta)).abs() <= 1e-6 * (1.0 + c_orig),
            "cost(P,X) = {c_orig} vs cost(P̃,X)+Δ = {}",
            c_proj + delta
        );
    }
}

#[test]
fn epsilon_tightening_grows_every_derived_size() {
    // Table 2's ε dependencies: all derived sizes are monotone in 1/ε.
    let mut last_jl = 0usize;
    let mut last_pca = 0usize;
    let mut last_coreset = 0.0f64;
    for eps in [0.8, 0.5, 0.3, 0.2] {
        let jl = edge_kmeans::sketch::dims::lemma41_jl_dim(10_000, 2, eps, 0.1);
        let pca = edge_kmeans::sketch::dims::theorem51_pca_dim(2, eps);
        let coreset = edge_kmeans::coreset::size::theorem32_fss_size(2, eps, 0.1);
        assert!(jl > last_jl, "JL dim not growing at ε={eps}");
        assert!(pca > last_pca, "PCA dim not growing at ε={eps}");
        assert!(
            coreset > last_coreset,
            "coreset size not growing at ε={eps}"
        );
        last_jl = jl;
        last_pca = pca;
        last_coreset = coreset;
    }
}

#[test]
fn approximation_chain_theorem42_shape() {
    // Empirical check of the Theorem 4.2 error chain on one seed: the
    // summary-derived centers cost at most (1+ε)⁵/(1−ε) of the reference
    // with generous practical ε.
    let data = mixture(800, 24, 2, 7);
    let (n, d) = data.shape();
    let reference = evaluation::reference(&data, 2, 6, 1).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(8);
    let mut net = Network::new(1);
    let out = JlFss::new(params).run(&data, &mut net).unwrap();
    let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
    let eps = 0.25f64; // practical dims correspond to a much smaller eff. ε
    let bound = (1.0 + eps).powi(5) / (1.0 - eps);
    assert!(
        nc <= bound,
        "normalized cost {nc} above Theorem 4.2 bound {bound}"
    );
}
