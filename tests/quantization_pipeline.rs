//! Integration tests for the joint DR/CR/QT extension (paper §6), plus
//! the F32 auxiliary-payload precision (`ekm run --precision f32`).

use edge_kmeans::clustering::lower_bound::cost_lower_bound;
use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::net::wire::Precision;
use edge_kmeans::prelude::*;

fn workload(n: usize, side: usize, seed: u64) -> Matrix {
    let ds = MnistLike::new(n, side).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

#[test]
fn comm_bits_increase_monotonically_with_s() {
    // Figure 3(b)/4(b): the transmitted bits grow linearly in s.
    let data = workload(1000, 12, 1);
    let (n, d) = data.shape();
    let base = SummaryParams::practical(2, n, d).with_seed(2);
    let mut last = 0u64;
    for s in [4u32, 12, 24, 40, 52] {
        let q = RoundingQuantizer::new(s).unwrap();
        let mut net = Network::new(1);
        let out = JlFssJl::new(base.clone().with_quantizer(q))
            .run(&data, &mut net)
            .unwrap();
        assert!(
            out.uplink_bits > last,
            "bits not increasing at s={s}: {} <= {last}",
            out.uplink_bits
        );
        last = out.uplink_bits;
    }
}

#[test]
fn quantized_summary_never_much_worse_than_full_precision() {
    // Figure 3(a)/4(a) right-hand plateau: moderate-to-large s matches the
    // unquantized cost.
    let data = workload(1000, 12, 3);
    let (n, d) = data.shape();
    let reference = evaluation::reference(&data, 2, 5, 1).unwrap();
    let base = SummaryParams::practical(2, n, d).with_seed(4);
    let mut net = Network::new(1);
    let plain = JlFssJl::new(base.clone()).run(&data, &mut net).unwrap();
    let nc_plain = evaluation::normalized_cost(&data, &plain.centers, reference.cost).unwrap();
    for s in [12u32, 24, 52] {
        let q = RoundingQuantizer::new(s).unwrap();
        let out = JlFssJl::new(base.clone().with_quantizer(q))
            .run(&data, &mut net)
            .unwrap();
        let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
        assert!(
            nc < nc_plain + 0.1,
            "s={s}: quantized cost {nc} vs plain {nc_plain}"
        );
    }
}

#[test]
fn all_quantized_pipeline_variants_run() {
    let data = workload(800, 10, 5);
    let (n, d) = data.shape();
    let q = RoundingQuantizer::new(16).unwrap();
    let params = SummaryParams::practical(2, n, d)
        .with_seed(6)
        .with_quantizer(q);
    let variants: Vec<Box<dyn CentralizedPipeline>> = vec![
        Box::new(Fss::new(params.clone())),
        Box::new(JlFss::new(params.clone())),
        Box::new(FssJl::new(params.clone())),
        Box::new(JlFssJl::new(params.clone())),
    ];
    for pipe in variants {
        let mut net = Network::new(1);
        let out = pipe.run(&data, &mut net).unwrap();
        assert!(pipe.name().ends_with("+QT"), "{}", pipe.name());
        assert!(out.centers.as_slice().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn section63_optimizer_on_real_lower_bound() {
    // Build the full §6.3 stack: adaptive-sampling lower bound E, then the
    // optimizer, then run the chosen configuration end to end.
    let data = workload(900, 10, 7);
    let (n, d) = data.shape();
    let weights = vec![1.0; n];
    let e = cost_lower_bound(&data, &weights, 2, 0.1, 8).unwrap();
    assert!(e.lower_bound > 0.0);

    let optimizer = QtOptimizer {
        n,
        d,
        k: 2,
        y0: 2.5,
        delta0: 0.1,
        lower_bound_e: e.lower_bound,
        diameter: 2.0 * (d as f64).sqrt(),
        max_norm: data.max_row_norm(),
    };
    let report = optimizer.optimize().unwrap();
    let s_star = report.best().s;
    assert!((1..=52).contains(&s_star));

    // The chosen s must be *feasible* and runnable end to end.
    let q = report.best_quantizer();
    let params = SummaryParams::practical(2, n, d)
        .with_seed(9)
        .with_quantizer(q);
    let mut net = Network::new(1);
    let out = JlFssJl::new(params).run(&data, &mut net).unwrap();
    let reference = evaluation::reference(&data, 2, 5, 2).unwrap();
    let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
    // The optimizer's bound Y0 = 2.5 is loose; empirically we stay near 1.
    assert!(
        nc < 2.5,
        "normalized cost {nc} violates the optimizer bound"
    );
}

/// Relative Frobenius distance between two center sets — the "center
/// perturbation" metric of the F32 accuracy contract.
fn relative_center_perturbation(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape());
    let mut diff = 0.0f64;
    let mut norm = 0.0f64;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        diff += (x - y) * (x - y);
        norm += x * x;
    }
    (diff / norm.max(f64::MIN_POSITIVE)).sqrt()
}

#[test]
fn f32_aux_precision_cuts_bits_with_bounded_perturbation() {
    // `--precision f32` halves the basis + weight payloads. That is NOT
    // a bit-identity contract (the basis really is rounded): the
    // assertions are a relative center perturbation and a cost-ratio
    // bound, the accuracy analogue of the §6 quantization plateau.
    let data = workload(900, 12, 13);
    let (n, d) = data.shape();
    let reference = evaluation::reference(&data, 2, 5, 1).unwrap();
    let base = SummaryParams::practical(2, n, d).with_seed(14);
    // FSS ships the basis (the payload f32 shrinks) plus the weights.
    let run_at = |p: SummaryParams| {
        let mut net = Network::new(1);
        let out = JlFss::new(p).run(&data, &mut net).unwrap();
        (out, net.stats().clone())
    };
    let (full, _) = run_at(base.clone());
    let (single, _) = run_at(base.clone().with_precision(Precision::F32));

    assert!(
        single.uplink_bits < full.uplink_bits,
        "f32 {} vs full {}",
        single.uplink_bits,
        full.uplink_bits
    );
    let rel = relative_center_perturbation(&full.centers, &single.centers);
    assert!(rel < 1e-2, "relative center perturbation {rel}");
    let nc_full = evaluation::normalized_cost(&data, &full.centers, reference.cost).unwrap();
    let nc_single = evaluation::normalized_cost(&data, &single.centers, reference.cost).unwrap();
    assert!(
        nc_single < nc_full * 1.05 + 0.01,
        "f32 cost {nc_single} vs full {nc_full}"
    );
    // Reruns at f32 are still fully deterministic.
    let (again, _) = run_at(base.with_precision(Precision::F32));
    assert_eq!(again.uplink_bits, single.uplink_bits);
    assert!(again.centers.approx_eq(&single.centers, 0.0));
}

#[test]
fn f32_aux_precision_shrinks_distributed_svd_summaries() {
    // In BKLW the disPCA SVD summaries dominate the uplink; f32 halves
    // exactly that term, and the sources project onto the rounded basis
    // with a bounded accuracy cost.
    let data = workload(800, 14, 15);
    let (n, d) = data.shape();
    let shards = edge_kmeans::data::partition::partition_uniform(&data, 5, 16).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(17);
    let reference = evaluation::reference(&data, 2, 5, 2).unwrap();

    let mut net_full = Network::new(5);
    let full = Bklw::new(params.clone())
        .run(&shards, &mut net_full)
        .unwrap();
    let mut net_single = Network::new(5);
    let single = Bklw::new(params.with_precision(Precision::F32))
        .run(&shards, &mut net_single)
        .unwrap();

    let svd_full = net_full.stats().uplink_bits_by_kind()["svd-summary"];
    let svd_single = net_single.stats().uplink_bits_by_kind()["svd-summary"];
    // The matrix payload halves; only the shape/tag overhead survives.
    assert!(
        (svd_single as f64) < 0.6 * svd_full as f64,
        "f32 svd bits {svd_single} vs full {svd_full}"
    );
    assert!(single.downlink_bits < full.downlink_bits, "basis broadcast");

    let nc_full = evaluation::normalized_cost(&data, &full.centers, reference.cost).unwrap();
    let nc_single = evaluation::normalized_cost(&data, &single.centers, reference.cost).unwrap();
    assert!(
        nc_single < nc_full * 1.1 + 0.02,
        "f32 cost {nc_single} vs full {nc_full}"
    );
}

#[test]
fn eq14_error_bound_holds_on_pipeline_payloads() {
    // The quantization error of the actual transmitted coreset points
    // respects Δ_QT ≤ 2^{-s}·max‖p‖ (paper eq. (14)).
    let data = workload(600, 10, 9);
    for s in [3u32, 8, 20] {
        let q = RoundingQuantizer::new(s).unwrap();
        let measured = q.measured_max_error(&data);
        let bound = q.max_error_bound(data.max_row_norm());
        assert!(
            measured <= bound * (1.0 + 1e-12),
            "s={s}: {measured} > {bound}"
        );
    }
}

#[test]
fn wire_payload_is_exactly_representable() {
    // decode(encode(Γ(x))) == Γ(x) bit for bit, through the real network.
    let data = workload(300, 8, 11);
    let q = RoundingQuantizer::new(7).unwrap();
    let quantized = q.quantize_matrix(&data);
    let msg = edge_kmeans::net::messages::Message::Coreset {
        points: quantized.clone(),
        weights: vec![1.0; quantized.rows()],
        delta: 0.0,
        precision: edge_kmeans::net::wire::Precision::Quantized { s: 7 },
        weights_precision: edge_kmeans::net::wire::Precision::Full,
    };
    let mut net = Network::new(1);
    let received = net.send_to_server(0, &msg).unwrap();
    match received {
        edge_kmeans::net::messages::Message::Coreset { points, .. } => {
            assert!(points.approx_eq(&quantized, 0.0), "wire not bit-exact");
        }
        _ => panic!("wrong message type"),
    }
}
