//! Fault tolerance end to end, in process: a source lost mid-stage
//! degrades the run (completes on the survivors, reports the dropped
//! shard, stays within the documented cost-ratio bound), and a driver
//! that crashes mid-run resumes from its journal to bit-identical
//! centers and network statistics — without the surviving executors
//! recomputing anything.

use edge_kmeans::core::journal::JournalingTransport;
use edge_kmeans::core::CoreError;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::net::protocol::{
    channel_pairs, Command, CommandTransport, Response, SourceEndpoint,
};
use edge_kmeans::net::{NetError, NetworkStats};
use edge_kmeans::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const FP: u64 = 0xFA17_70B5;

fn workload(n: usize, d: usize, seed: u64) -> Matrix {
    let raw = GaussianMixture::new(n, d, 2)
        .with_separation(4.0)
        .with_seed(seed)
        .generate()
        .unwrap()
        .points;
    edge_kmeans::data::normalize::normalize_paper(&raw).0
}

fn pipeline(list: &str, n: usize, d: usize) -> StagePipeline {
    StagePipeline::from_names(list, SummaryParams::practical(2, n, d).with_seed(9)).unwrap()
}

fn scratch_journal(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "ekm-ft-{tag}-{}-{}.journal",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn assert_centers_bit_identical(a: &Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "centers diverge: {x} vs {y}");
    }
}

/// A source endpoint that dies (typed transport error, then the
/// channel drops) after serving `remaining` commands — the in-process
/// stand-in for a killed edge device.
struct DyingEndpoint<E: SourceEndpoint> {
    inner: E,
    remaining: usize,
}

impl<E: SourceEndpoint> SourceEndpoint for DyingEndpoint<E> {
    fn recv_command(&mut self) -> Result<Command, NetError> {
        if self.remaining == 0 {
            return Err(NetError::Transport {
                context: "injected fault",
                detail: "source process killed".to_string(),
            });
        }
        self.remaining -= 1;
        self.inner.recv_command()
    }

    fn send_response(&mut self, resp: Response) -> Result<(), NetError> {
        self.inner.send_response(resp)
    }
}

/// A driver-side transport that silently swallows every send after the
/// first `sends_before_crash` and fails every receive from then on —
/// the in-process stand-in for a driver process dying mid-round.
struct FaultInjector<T: CommandTransport> {
    inner: T,
    sends_before_crash: usize,
}

impl<T: CommandTransport> FaultInjector<T> {
    fn tripped(&self) -> bool {
        self.sends_before_crash == 0
    }
}

impl<T: CommandTransport> CommandTransport for FaultInjector<T> {
    fn sources(&self) -> usize {
        self.inner.sources()
    }

    fn send(&mut self, source: usize, cmd: &Command) -> Result<(), NetError> {
        if self.tripped() {
            // The crashed driver reaches nobody — not even with the
            // abort broadcast `run_driver` fires on the way down.
            return Ok(());
        }
        self.sends_before_crash -= 1;
        self.inner.send(source, cmd)
    }

    fn recv(&mut self, source: usize) -> Result<Response, NetError> {
        if self.tripped() {
            return Err(NetError::Transport {
                context: "injected fault",
                detail: "driver process crashed".to_string(),
            });
        }
        self.inner.recv(source)
    }

    fn stats(&self) -> &NetworkStats {
        self.inner.stats()
    }
}

#[test]
fn lost_source_degrades_within_the_documented_bound() {
    let n = 600;
    let d = 24;
    let m = 3;
    let pipe = pipeline("dispca,disss", n, d);
    let data = workload(n, d, 11);
    let shards = partition_uniform(&data, m, 7).unwrap();
    let lost_rows = shards[2].rows();

    // Clean twin: every source answers.
    let clean = pipe.run_channel(shards.clone()).unwrap();
    assert!(clean.degraded.is_none());

    // Faulted run: source 2 serves two commands (describe + the first
    // stage round), then dies mid-run.
    let (mut hub, endpoints) = channel_pairs(m);
    let degraded = std::thread::scope(|scope| {
        for (i, (ep, shard)) in endpoints.into_iter().zip(shards.clone()).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            scope.spawn(move || {
                let mut ep = DyingEndpoint {
                    inner: ep,
                    remaining: if i == 2 { 2 } else { usize::MAX },
                };
                let _ = SourceExecutor::new(stages, params, i, m, shard).serve(&mut ep);
            });
        }
        pipe.run_driver(&mut hub).unwrap()
    });

    let record = degraded.degraded.as_ref().expect("run must be degraded");
    assert_eq!(record.lost_sources.len(), 1);
    assert_eq!(record.lost_sources[0].0, 2);
    assert_eq!(record.rows_total, n);
    assert_eq!(record.rows_lost, lost_rows);
    let frac = lost_rows as f64 / n as f64;
    let expected_bound = (1.0 + pipe.params().epsilon) / (1.0 - frac);
    assert!((record.cost_ratio_bound - expected_bound).abs() < 1e-12);

    // The paper's accounting: the survivors still summarize their share
    // within (1 + ε), so the degraded centers' cost on the FULL dataset
    // stays within the documented ratio of the clean twin's.
    let degraded_cost = edge_kmeans::clustering::cost::cost(&data, &degraded.centers).unwrap();
    let clean_cost = edge_kmeans::clustering::cost::cost(&data, &clean.centers).unwrap();
    let ratio = degraded_cost / clean_cost;
    assert!(
        ratio <= record.cost_ratio_bound,
        "cost ratio {ratio:.4} exceeds the documented bound {:.4}",
        record.cost_ratio_bound
    );
}

#[test]
fn losing_every_source_is_a_typed_error_not_a_degraded_run() {
    let n = 300;
    let d = 12;
    let pipe = pipeline("dispca,disss", n, d);
    let data = workload(n, d, 13);
    let shards = partition_uniform(&data, 2, 3).unwrap();
    let (mut hub, endpoints) = channel_pairs(2);
    std::thread::scope(|scope| {
        for (i, (ep, shard)) in endpoints.into_iter().zip(shards).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            scope.spawn(move || {
                // Both sources die after the describe round.
                let mut ep = DyingEndpoint {
                    inner: ep,
                    remaining: 1,
                };
                let _ = SourceExecutor::new(stages, params, i, 2, shard).serve(&mut ep);
            });
        }
        let err = pipe.run_driver(&mut hub).unwrap_err();
        assert!(
            matches!(err, CoreError::Net(NetError::Transport { .. })),
            "expected a typed transport error once no source survives, got {err:?}"
        );
    });
}

#[test]
fn crashed_driver_resumes_to_bit_identical_centers_and_stats() {
    let n = 600;
    let d = 20;
    let m = 3;
    let pipe = pipeline("dispca,disss", n, d);
    let data = workload(n, d, 17);
    let shards = partition_uniform(&data, m, 5).unwrap();

    // Clean twin for the bitwise comparison.
    let (clean, clean_stats, _) = pipe.run_channel_detailed(shards.clone()).unwrap();

    let journal = scratch_journal("resume");
    let (out, stats, replayed) = std::thread::scope(|scope| {
        let (hub, endpoints) = channel_pairs(m);
        for (i, (mut ep, shard)) in endpoints.into_iter().zip(shards.clone()).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            // The executors outlive the driver crash: real processes
            // keep their sockets open while the driver restarts.
            scope.spawn(move || SourceExecutor::new(stages, params, i, m, shard).serve(&mut ep));
        }

        // Attempt 1: the driver journals every round, then "crashes"
        // mid-fanout — after the describe round plus part of the first
        // stage broadcast.
        let recording = JournalingTransport::record(hub, &journal, FP).unwrap();
        let mut crashing = FaultInjector {
            inner: recording,
            sends_before_crash: 5,
        };
        let err = pipe.run_driver(&mut crashing).unwrap_err();
        assert!(
            matches!(err, CoreError::Net(NetError::Transport { .. })),
            "the injected crash must surface as a transport error, got {err:?}"
        );
        let hub = crashing.inner.into_inner();

        // Attempt 2: a fresh driver resumes from the journal over the
        // same executors. Replayed rounds come from disk; the round in
        // flight is reconciled from the executors' fingerprints; the
        // rest of the run happens live.
        let mut resuming = JournalingTransport::resume(hub, &journal, FP).unwrap();
        let replayed = resuming.replayed_entries();
        let out = pipe.run_driver(&mut resuming).unwrap();
        let stats = resuming.stats().clone();
        (out, stats, replayed)
    });
    let _ = std::fs::remove_file(&journal);

    assert!(replayed > 0, "the resume must replay journaled rounds");
    assert!(
        out.degraded.is_none(),
        "a resumed run is not a degraded run"
    );
    assert_centers_bit_identical(&out.centers, &clean.centers);
    assert_eq!(out.uplink_bits, clean.uplink_bits);
    assert_eq!(out.downlink_bits, clean.downlink_bits);
    assert_eq!(out.summary_points, clean.summary_points);
    for i in 0..m {
        assert_eq!(stats.uplink_bits(i), clean_stats.uplink_bits(i));
        assert_eq!(stats.downlink_bits(i), clean_stats.downlink_bits(i));
    }
}

#[test]
fn resume_with_a_different_run_fingerprint_is_refused() {
    let n = 200;
    let d = 10;
    let pipe = pipeline("dispca,disss", n, d);
    let data = workload(n, d, 19);
    let shards = partition_uniform(&data, 2, 3).unwrap();
    let journal = scratch_journal("fp");

    std::thread::scope(|scope| {
        let (hub, endpoints) = channel_pairs(2);
        for (i, (mut ep, shard)) in endpoints.into_iter().zip(shards).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            scope.spawn(move || SourceExecutor::new(stages, params, i, 2, shard).serve(&mut ep));
        }
        let mut net = JournalingTransport::record(hub, &journal, FP).unwrap();
        pipe.run_driver(&mut net).unwrap();
    });

    // Resuming the finished journal under a different configuration
    // fingerprint must be a typed error, not a silent wrong replay.
    let (hub, _endpoints) = channel_pairs(2);
    let err = match JournalingTransport::resume(hub, &journal, FP ^ 1) {
        Ok(_) => panic!("a stale fingerprint must refuse to resume"),
        Err(e) => e,
    };
    let _ = std::fs::remove_file(&journal);
    assert!(
        matches!(err, CoreError::Journal { ref reason } if reason.contains("fingerprint")),
        "{err:?}"
    );
}
