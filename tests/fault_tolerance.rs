//! Fault tolerance end to end, in process: a source lost mid-stage
//! degrades the run (completes on the survivors, reports the dropped
//! shard, stays within the documented cost-ratio bound), and a driver
//! that crashes mid-run resumes from its journal to bit-identical
//! centers and network statistics — without the surviving executors
//! recomputing anything.

use edge_kmeans::core::journal::JournalingTransport;
use edge_kmeans::core::CoreError;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::net::protocol::{
    channel_pairs, Command, CommandTransport, Response, SourceEndpoint,
};
use edge_kmeans::net::{NetError, NetworkStats};
use edge_kmeans::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const FP: u64 = 0xFA17_70B5;

fn workload(n: usize, d: usize, seed: u64) -> Matrix {
    let raw = GaussianMixture::new(n, d, 2)
        .with_separation(4.0)
        .with_seed(seed)
        .generate()
        .unwrap()
        .points;
    edge_kmeans::data::normalize::normalize_paper(&raw).0
}

fn pipeline(list: &str, n: usize, d: usize) -> StagePipeline {
    StagePipeline::from_names(list, SummaryParams::practical(2, n, d).with_seed(9)).unwrap()
}

fn scratch_journal(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "ekm-ft-{tag}-{}-{}.journal",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn assert_centers_bit_identical(a: &Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "centers diverge: {x} vs {y}");
    }
}

/// A source endpoint that dies (typed transport error, then the
/// channel drops) after serving `remaining` commands — the in-process
/// stand-in for a killed edge device.
struct DyingEndpoint<E: SourceEndpoint> {
    inner: E,
    remaining: usize,
}

impl<E: SourceEndpoint> SourceEndpoint for DyingEndpoint<E> {
    fn recv_command(&mut self) -> Result<Command, NetError> {
        if self.remaining == 0 {
            return Err(NetError::Transport {
                context: "injected fault",
                detail: "source process killed".to_string(),
            });
        }
        self.remaining -= 1;
        self.inner.recv_command()
    }

    fn send_response(&mut self, resp: Response) -> Result<(), NetError> {
        self.inner.send_response(resp)
    }
}

/// A driver-side transport that silently swallows every send after the
/// first `sends_before_crash` and fails every receive from then on —
/// the in-process stand-in for a driver process dying mid-round.
struct FaultInjector<T: CommandTransport> {
    inner: T,
    sends_before_crash: usize,
}

impl<T: CommandTransport> FaultInjector<T> {
    fn tripped(&self) -> bool {
        self.sends_before_crash == 0
    }
}

impl<T: CommandTransport> CommandTransport for FaultInjector<T> {
    fn sources(&self) -> usize {
        self.inner.sources()
    }

    fn send(&mut self, source: usize, cmd: &Command) -> Result<(), NetError> {
        if self.tripped() {
            // The crashed driver reaches nobody — not even with the
            // abort broadcast `run_driver` fires on the way down.
            return Ok(());
        }
        self.sends_before_crash -= 1;
        self.inner.send(source, cmd)
    }

    fn recv(&mut self, source: usize) -> Result<Response, NetError> {
        if self.tripped() {
            return Err(NetError::Transport {
                context: "injected fault",
                detail: "driver process crashed".to_string(),
            });
        }
        self.inner.recv(source)
    }

    fn stats(&self) -> &NetworkStats {
        self.inner.stats()
    }

    fn promote(&mut self, origin: usize, host: usize) -> Result<(), NetError> {
        if self.tripped() {
            return Err(NetError::Transport {
                context: "injected fault",
                detail: "driver process crashed".to_string(),
            });
        }
        self.inner.promote(origin, host)
    }

    fn replaying(&self) -> bool {
        self.inner.replaying()
    }
}

#[test]
fn lost_source_degrades_within_the_documented_bound() {
    let n = 600;
    let d = 24;
    let m = 3;
    let pipe = pipeline("dispca,disss", n, d);
    let data = workload(n, d, 11);
    let shards = partition_uniform(&data, m, 7).unwrap();
    let lost_rows = shards[2].rows();

    // Clean twin: every source answers.
    let clean = pipe.run_channel(shards.clone()).unwrap();
    assert!(clean.degraded.is_none());

    // Faulted run: source 2 serves two commands (describe + the first
    // stage round), then dies mid-run.
    let (mut hub, endpoints) = channel_pairs(m);
    let degraded = std::thread::scope(|scope| {
        for (i, (ep, shard)) in endpoints.into_iter().zip(shards.clone()).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            scope.spawn(move || {
                let mut ep = DyingEndpoint {
                    inner: ep,
                    remaining: if i == 2 { 2 } else { usize::MAX },
                };
                let _ = SourceExecutor::new(stages, params, i, m, shard).serve(&mut ep);
            });
        }
        pipe.run_driver(&mut hub).unwrap()
    });

    let record = degraded.degraded.as_ref().expect("run must be degraded");
    assert_eq!(record.lost_sources.len(), 1);
    assert_eq!(record.lost_sources[0].0, 2);
    assert_eq!(record.rows_total, n);
    assert_eq!(record.rows_lost, lost_rows);
    let frac = lost_rows as f64 / n as f64;
    let expected_bound = (1.0 + pipe.params().epsilon) / (1.0 - frac);
    assert!((record.cost_ratio_bound - expected_bound).abs() < 1e-12);

    // The paper's accounting: the survivors still summarize their share
    // within (1 + ε), so the degraded centers' cost on the FULL dataset
    // stays within the documented ratio of the clean twin's.
    let degraded_cost = edge_kmeans::clustering::cost::cost(&data, &degraded.centers).unwrap();
    let clean_cost = edge_kmeans::clustering::cost::cost(&data, &clean.centers).unwrap();
    let ratio = degraded_cost / clean_cost;
    assert!(
        ratio <= record.cost_ratio_bound,
        "cost ratio {ratio:.4} exceeds the documented bound {:.4}",
        record.cost_ratio_bound
    );
}

#[test]
fn losing_every_source_is_a_typed_error_not_a_degraded_run() {
    let n = 300;
    let d = 12;
    let pipe = pipeline("dispca,disss", n, d);
    let data = workload(n, d, 13);
    let shards = partition_uniform(&data, 2, 3).unwrap();
    let (mut hub, endpoints) = channel_pairs(2);
    std::thread::scope(|scope| {
        for (i, (ep, shard)) in endpoints.into_iter().zip(shards).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            scope.spawn(move || {
                // Both sources die after the describe round.
                let mut ep = DyingEndpoint {
                    inner: ep,
                    remaining: 1,
                };
                let _ = SourceExecutor::new(stages, params, i, 2, shard).serve(&mut ep);
            });
        }
        let err = pipe.run_driver(&mut hub).unwrap_err();
        assert!(
            matches!(err, CoreError::Net(NetError::Transport { .. })),
            "expected a typed transport error once no source survives, got {err:?}"
        );
    });
}

/// Runs `pipe` over the channel backend with replica shards distributed
/// per the canonical ring, killing each source after its entry in
/// `remaining` commands (use `usize::MAX` to keep one alive).
fn run_replicated_with_deaths(
    pipe: &StagePipeline,
    shards: &[Matrix],
    remaining: &[usize],
) -> edge_kmeans::core::Result<(RunOutput, NetworkStats)> {
    let m = shards.len();
    let r = pipe.params().replication;
    let (hub, endpoints) = channel_pairs(m);
    let mut routed = edge_kmeans::net::RoutingTransport::new(hub);
    std::thread::scope(|scope| {
        for (i, (ep, shard)) in endpoints.into_iter().zip(shards.to_vec()).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            let replicas: std::collections::BTreeMap<usize, Matrix> =
                edge_kmeans::core::params::replica_origins(i, m, r)
                    .into_iter()
                    .map(|o| (o, shards[o].clone()))
                    .collect();
            let die_after = remaining[i];
            scope.spawn(move || {
                let mut ep = DyingEndpoint {
                    inner: ep,
                    remaining: die_after,
                };
                let _ = SourceExecutor::new(stages, params, i, m, shard)
                    .with_replicas(replicas)
                    .serve(&mut ep);
            });
        }
        let out = pipe.run_driver(&mut routed)?;
        Ok((out, routed.stats().clone()))
    })
}

#[test]
fn promoted_replica_keeps_the_run_bit_identical() {
    let n = 600;
    let d = 24;
    let m = 4;
    let data = workload(n, d, 23);
    let shards = partition_uniform(&data, m, 7).unwrap();
    for list in ["dispca,disss", "jl,stream,qt"] {
        let params = SummaryParams::practical(2, n, d)
            .with_seed(9)
            .with_replication(2);
        let pipe = StagePipeline::from_names(list, params).unwrap();

        // Twin where the replica owned the shard from the start: executor
        // identity is (source id, shard), so that twin is exactly the
        // clean run — promotion rebuilds the same persona elsewhere.
        let (clean, clean_stats, _) = pipe.run_channel_detailed(shards.clone()).unwrap();
        assert!(clean.recovered.is_none(), "{list}: clean run promoted");

        // Source 1 dies after describe + two stage rounds; its ring
        // replica lives on source 2.
        let mut remaining = vec![usize::MAX; m];
        remaining[1] = 3;
        let (out, stats) = run_replicated_with_deaths(&pipe, &shards, &remaining).unwrap();

        assert!(out.degraded.is_none(), "{list}: degraded instead");
        let rec = out
            .recovered
            .as_ref()
            .expect("run must record the recovery");
        assert_eq!(rec.promoted, vec![(1, 2)], "{list}");
        assert!(rec.replayed_rounds > 0, "{list}");

        assert_centers_bit_identical(&out.centers, &clean.centers);
        assert_eq!(out.uplink_bits, clean.uplink_bits, "{list}: uplink");
        assert_eq!(out.downlink_bits, clean.downlink_bits, "{list}: downlink");
        assert_eq!(out.summary_points, clean.summary_points, "{list}");
        for i in 0..m {
            assert_eq!(
                stats.uplink_bits(i),
                clean_stats.uplink_bits(i),
                "{list}: {i}"
            );
            assert_eq!(
                stats.downlink_bits(i),
                clean_stats.downlink_bits(i),
                "{list}: {i}"
            );
        }
        // The recovery overhead lives in its own counters, and the
        // digest (classic ledgers + centers) is unperturbed by it.
        assert_eq!(stats.replica_promotions(), 1, "{list}");
        assert!(stats.replica_bits() > 0, "{list}");
        assert_eq!(stats.replayed_rounds(), rec.replayed_rounds, "{list}");
        assert_eq!(
            edge_kmeans::net::RunDigest::new(&stats, &out.centers),
            edge_kmeans::net::RunDigest::new(&clean_stats, &clean.centers),
            "{list}: digest"
        );
    }
}

#[test]
fn dead_owner_and_dead_replica_degrade_cleanly() {
    let n = 600;
    let d = 24;
    let m = 4;
    let data = workload(n, d, 29);
    let shards = partition_uniform(&data, m, 7).unwrap();
    let params = SummaryParams::practical(2, n, d)
        .with_seed(9)
        .with_replication(2);
    let pipe = StagePipeline::from_names("dispca,disss", params).unwrap();

    // Sources 2 and 3 both die. Shard 2's only replica lives on 3 —
    // equally dead — so shard 2 degrades (the clean PR 7 path). Shard
    // 3's replica lives on 0 and recovers. One run, both records.
    let mut remaining = vec![usize::MAX; m];
    remaining[2] = 2;
    remaining[3] = 3;
    let (out, _) = run_replicated_with_deaths(&pipe, &shards, &remaining).unwrap();
    let record = out.degraded.as_ref().expect("run must be degraded");
    let lost: Vec<usize> = record.lost_sources.iter().map(|&(i, _)| i).collect();
    assert_eq!(lost, vec![2], "only the replica-less shard degrades");
    let rec = out.recovered.as_ref().expect("shard 3 must recover on 0");
    assert_eq!(rec.promoted, vec![(3, 0)]);
}

#[test]
fn crashed_driver_resumes_to_bit_identical_centers_and_stats() {
    let n = 600;
    let d = 20;
    let m = 3;
    let pipe = pipeline("dispca,disss", n, d);
    let data = workload(n, d, 17);
    let shards = partition_uniform(&data, m, 5).unwrap();

    // Clean twin for the bitwise comparison.
    let (clean, clean_stats, _) = pipe.run_channel_detailed(shards.clone()).unwrap();

    let journal = scratch_journal("resume");
    let (out, stats, replayed) = std::thread::scope(|scope| {
        let (hub, endpoints) = channel_pairs(m);
        for (i, (mut ep, shard)) in endpoints.into_iter().zip(shards.clone()).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            // The executors outlive the driver crash: real processes
            // keep their sockets open while the driver restarts.
            scope.spawn(move || SourceExecutor::new(stages, params, i, m, shard).serve(&mut ep));
        }

        // Attempt 1: the driver journals every round, then "crashes"
        // mid-fanout — after the describe round plus part of the first
        // stage broadcast.
        let recording = JournalingTransport::record(hub, &journal, FP).unwrap();
        let mut crashing = FaultInjector {
            inner: recording,
            sends_before_crash: 5,
        };
        let err = pipe.run_driver(&mut crashing).unwrap_err();
        assert!(
            matches!(err, CoreError::Net(NetError::Transport { .. })),
            "the injected crash must surface as a transport error, got {err:?}"
        );
        let hub = crashing.inner.into_inner();

        // Attempt 2: a fresh driver resumes from the journal over the
        // same executors. Replayed rounds come from disk; the round in
        // flight is reconciled from the executors' fingerprints; the
        // rest of the run happens live.
        let mut resuming = JournalingTransport::resume(hub, &journal, FP).unwrap();
        let replayed = resuming.replayed_entries();
        let out = pipe.run_driver(&mut resuming).unwrap();
        let stats = resuming.stats().clone();
        (out, stats, replayed)
    });
    let _ = std::fs::remove_file(&journal);

    assert!(replayed > 0, "the resume must replay journaled rounds");
    assert!(
        out.degraded.is_none(),
        "a resumed run is not a degraded run"
    );
    assert_centers_bit_identical(&out.centers, &clean.centers);
    assert_eq!(out.uplink_bits, clean.uplink_bits);
    assert_eq!(out.downlink_bits, clean.downlink_bits);
    assert_eq!(out.summary_points, clean.summary_points);
    for i in 0..m {
        assert_eq!(stats.uplink_bits(i), clean_stats.uplink_bits(i));
        assert_eq!(stats.downlink_bits(i), clean_stats.downlink_bits(i));
    }
}

#[test]
fn crash_during_promotion_resumes_to_bit_identical_centers() {
    let n = 600;
    let d = 20;
    let m = 3;
    let data = workload(n, d, 31);
    let shards = partition_uniform(&data, m, 5).unwrap();
    let params = SummaryParams::practical(2, n, d)
        .with_seed(9)
        .with_replication(2);
    let pipe = StagePipeline::from_names("dispca,disss", params).unwrap();

    // Clean twin (no faults, no journal) for the bitwise comparison.
    let (clean, clean_stats, _) = pipe.run_channel_detailed(shards.clone()).unwrap();

    // Sweep the driver's crash point across the whole failover window —
    // before, during, and after the promotion — and require every
    // resume to land on the same bits. At least one point must fall
    // with the promotion record journaled but the run unfinished.
    let mut saw_promotion_window = false;
    for crash_after_sends in 12..=20 {
        let journal = scratch_journal("promo");
        let (out, stats, promo_journaled) = std::thread::scope(|scope| {
            let (hub, endpoints) = channel_pairs(m);
            for (i, (ep, shard)) in endpoints.into_iter().zip(shards.clone()).enumerate() {
                let stages = pipe.stages();
                let params = pipe.params();
                let replicas: std::collections::BTreeMap<usize, Matrix> =
                    edge_kmeans::core::params::replica_origins(i, m, 2)
                        .into_iter()
                        .map(|o| (o, shards[o].clone()))
                        .collect();
                scope.spawn(move || {
                    // Source 1 dies after describe + stage + basis; the
                    // other executors outlive the driver crash.
                    let mut ep = DyingEndpoint {
                        inner: ep,
                        remaining: if i == 1 { 3 } else { usize::MAX },
                    };
                    let _ = SourceExecutor::new(stages, params, i, m, shard)
                        .with_replicas(replicas)
                        .serve(&mut ep);
                });
            }

            // Attempt 1: source 1's death triggers a promotion onto
            // source 2; the driver crashes around it.
            let routed = edge_kmeans::net::RoutingTransport::new(hub);
            let recording = JournalingTransport::record(routed, &journal, FP).unwrap();
            let mut crashing = FaultInjector {
                inner: recording,
                sends_before_crash: crash_after_sends,
            };
            pipe.run_driver(&mut crashing).unwrap_err();
            let hub = crashing.inner.into_inner().into_inner();

            let (_, entries) = edge_kmeans::core::journal::read_journal(&journal).unwrap();
            let promo_journaled = entries.iter().any(|e| {
                matches!(
                    e,
                    edge_kmeans::core::journal::JournalEntry::Promoted { origin: 1, host: 2 }
                )
            });

            // Attempt 2: a fresh driver (fresh routing layer) resumes;
            // a journaled promotion re-fires at reconcile time.
            let routed = edge_kmeans::net::RoutingTransport::new(hub);
            let mut resuming = JournalingTransport::resume(routed, &journal, FP).unwrap();
            assert!(resuming.replayed_entries() > 0);
            let out = pipe.run_driver(&mut resuming).unwrap();
            let stats = resuming.stats().clone();
            (out, stats, promo_journaled)
        });
        let _ = std::fs::remove_file(&journal);
        saw_promotion_window |= promo_journaled;

        let tag = format!("crash after {crash_after_sends} sends");
        assert!(out.degraded.is_none(), "{tag}: recovery must not degrade");
        let rec = out.recovered.as_ref().expect("promotion must be recorded");
        assert_eq!(rec.promoted, vec![(1, 2)], "{tag}");
        assert_centers_bit_identical(&out.centers, &clean.centers);
        assert_eq!(out.uplink_bits, clean.uplink_bits, "{tag}");
        assert_eq!(out.downlink_bits, clean.downlink_bits, "{tag}");
        for i in 0..m {
            assert_eq!(
                stats.uplink_bits(i),
                clean_stats.uplink_bits(i),
                "{tag}: {i}"
            );
            assert_eq!(
                stats.downlink_bits(i),
                clean_stats.downlink_bits(i),
                "{tag}: {i}"
            );
        }
        assert_eq!(
            edge_kmeans::net::RunDigest::new(&stats, &out.centers),
            edge_kmeans::net::RunDigest::new(&clean_stats, &clean.centers),
            "{tag}: digest"
        );
    }
    assert!(
        saw_promotion_window,
        "no crash point landed inside the promotion window"
    );
}

#[test]
fn resume_with_a_different_run_fingerprint_is_refused() {
    let n = 200;
    let d = 10;
    let pipe = pipeline("dispca,disss", n, d);
    let data = workload(n, d, 19);
    let shards = partition_uniform(&data, 2, 3).unwrap();
    let journal = scratch_journal("fp");

    std::thread::scope(|scope| {
        let (hub, endpoints) = channel_pairs(2);
        for (i, (mut ep, shard)) in endpoints.into_iter().zip(shards).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            scope.spawn(move || SourceExecutor::new(stages, params, i, 2, shard).serve(&mut ep));
        }
        let mut net = JournalingTransport::record(hub, &journal, FP).unwrap();
        pipe.run_driver(&mut net).unwrap();
    });

    // Resuming the finished journal under a different configuration
    // fingerprint must be a typed error, not a silent wrong replay.
    let (hub, _endpoints) = channel_pairs(2);
    let err = match JournalingTransport::resume(hub, &journal, FP ^ 1) {
        Ok(_) => panic!("a stale fingerprint must refuse to resume"),
        Err(e) => e,
    };
    let _ = std::fs::remove_file(&journal);
    assert!(
        matches!(err, CoreError::Journal { ref reason } if reason.contains("fingerprint")),
        "{err:?}"
    );
}

/// Satellite 2: a journal torn at *any* byte offset — the tail a crash
/// can leave when the filesystem drops the unsynced suffix — must
/// either parse cleanly (the truncation landed on a record boundary) or
/// fail with the typed journal error. Never a panic, never a
/// misclassified error, never a silently wrong entry list.
#[test]
fn journal_torn_at_every_byte_is_clean_or_typed() {
    use edge_kmeans::core::executor::SourceExecutor;
    use edge_kmeans::core::journal::read_journal;

    let n = 240;
    let d = 10;
    let m = 2;
    let data = workload(n, d, 29);
    let shards = partition_uniform(&data, m, 5).unwrap();
    let pipe = pipeline("dispca,disss", n, d);

    let journal = scratch_journal("torn");
    std::thread::scope(|scope| {
        let (hub, endpoints) = channel_pairs(m);
        for (i, (mut ep, shard)) in endpoints.into_iter().zip(shards).enumerate() {
            let stages = pipe.stages();
            let params = pipe.params();
            scope.spawn(move || SourceExecutor::new(stages, params, i, m, shard).serve(&mut ep));
        }
        let mut net = JournalingTransport::record(hub, &journal, FP).unwrap();
        pipe.run_driver(&mut net).unwrap();
    });

    let full = std::fs::read(&journal).unwrap();
    let _ = std::fs::remove_file(&journal);
    let (_, complete) = {
        let torn = scratch_journal("torn-cut");
        std::fs::write(&torn, &full).unwrap();
        let parsed = read_journal(&torn).unwrap();
        let _ = std::fs::remove_file(&torn);
        parsed
    };
    assert!(complete.len() > 10, "run too short to tear meaningfully");

    let torn = scratch_journal("torn-cut");
    let mut clean_cuts = 0;
    for cut in 0..full.len() {
        std::fs::write(&torn, &full[..cut]).unwrap();
        match read_journal(&torn) {
            Ok((_, entries)) => {
                clean_cuts += 1;
                // A clean parse must be a strict prefix of the full
                // journal, not a reshuffled or invented history.
                assert!(entries.len() < complete.len(), "cut {cut}");
                assert_eq!(entries, complete[..entries.len()], "cut {cut}");
            }
            Err(CoreError::Journal { .. }) => {}
            Err(other) => panic!("cut {cut}: untyped error {other:?}"),
        }
    }
    let _ = std::fs::remove_file(&torn);
    // Record boundaries exist where the torn tail parses cleanly — the
    // fsync-at-append discipline guarantees a crashed driver's journal
    // is one of these prefixes plus at most one torn record.
    assert!(clean_cuts >= complete.len(), "{clean_cuts} clean cuts");
}

mod health_properties {
    //! Satellite 3: the health machine's escalation contract, checked
    //! against a reference model for arbitrary loss patterns. The model
    //! is the documented spec: a loss against a source that answered
    //! (or was just re-homed) earns exactly one reissue; a loss against
    //! a suspect consumes the next ring replica; a failed promotion
    //! consumes the next replica with no reissue owed; an exhausted
    //! ring degrades, and degradation is absorbing.

    use edge_kmeans::core::health::{Health, HealthMachine, RecoveryAction};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Ev {
        Loss,
        Response,
        PromoteFails,
    }

    fn events() -> impl Strategy<Value = Vec<Ev>> {
        proptest::collection::vec(
            prop_oneof![Just(Ev::Loss), Just(Ev::Response), Just(Ev::PromoteFails)],
            0..48,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn escalation_order_is_deterministic_for_any_loss_pattern(
            ring_len in 0usize..5,
            events in events(),
        ) {
            let ring: Vec<usize> = (10..10 + ring_len).collect();
            let mut machine = HealthMachine::new(ring.clone());

            // The reference model.
            let mut unconsumed = ring.clone();
            let mut owed_reissue = true;
            let mut dead = false;
            let mut absorbed_on: Option<usize> = None;
            // Whether the driver is allowed to report a failed
            // promotion (only right after a Promote action).
            let mut promote_outstanding = false;

            for ev in events {
                match ev {
                    Ev::Response => {
                        machine.on_response();
                        owed_reissue = true;
                        promote_outstanding = false;
                    }
                    Ev::PromoteFails => {
                        if !promote_outstanding {
                            continue;
                        }
                        let got = machine.on_promotion_failed();
                        promote_outstanding = false;
                        if dead {
                            prop_assert_eq!(got, RecoveryAction::Degrade);
                            continue;
                        }
                        if unconsumed.is_empty() {
                            prop_assert_eq!(got, RecoveryAction::Degrade);
                            dead = true;
                            absorbed_on = None;
                        } else {
                            let host = unconsumed.remove(0);
                            prop_assert_eq!(got, RecoveryAction::Promote { host });
                            absorbed_on = Some(host);
                            promote_outstanding = true;
                            // next_replica clears suspicion: the fresh
                            // host gets its own reissue before the ring
                            // is consulted again.
                            owed_reissue = true;
                        }
                    }
                    Ev::Loss => {
                        let got = machine.on_loss();
                        promote_outstanding = false;
                        if dead {
                            prop_assert_eq!(got, RecoveryAction::Degrade);
                            continue;
                        }
                        if owed_reissue {
                            prop_assert_eq!(got, RecoveryAction::Reissue);
                            owed_reissue = false;
                        } else if unconsumed.is_empty() {
                            prop_assert_eq!(got, RecoveryAction::Degrade);
                            dead = true;
                            absorbed_on = None;
                        } else {
                            let host = unconsumed.remove(0);
                            prop_assert_eq!(got, RecoveryAction::Promote { host });
                            absorbed_on = Some(host);
                            promote_outstanding = true;
                            owed_reissue = true;
                        }
                    }
                }

                // The observable state always matches the model.
                let want = if dead {
                    Health::Dead
                } else if let Some(host) = absorbed_on {
                    Health::Absorbed { host }
                } else if !owed_reissue {
                    Health::Suspect
                } else {
                    Health::Healthy
                };
                prop_assert_eq!(machine.state(), want);
                prop_assert_eq!(machine.host(), absorbed_on);
            }
        }

        /// However the losses interleave, the ring hosts are promoted
        /// in canonical order, each at most once, and only a dry ring
        /// degrades.
        #[test]
        fn ring_hosts_promote_in_order_and_at_most_once(
            ring_len in 0usize..5,
            events in events(),
        ) {
            let ring: Vec<usize> = (20..20 + ring_len).collect();
            let mut machine = HealthMachine::new(ring.clone());
            let mut promoted = Vec::new();
            let mut degraded = false;
            let mut promote_outstanding = false;
            for ev in events {
                let got = match ev {
                    Ev::Response => {
                        machine.on_response();
                        promote_outstanding = false;
                        continue;
                    }
                    Ev::PromoteFails if promote_outstanding => machine.on_promotion_failed(),
                    Ev::PromoteFails => continue,
                    Ev::Loss => machine.on_loss(),
                };
                promote_outstanding = false;
                match got {
                    RecoveryAction::Reissue => {
                        prop_assert!(!degraded, "a degraded source was reissued");
                    }
                    RecoveryAction::Promote { host } => {
                        prop_assert!(!degraded, "a degraded source was promoted");
                        promoted.push(host);
                        promote_outstanding = true;
                    }
                    RecoveryAction::Degrade => {
                        if !degraded {
                            prop_assert_eq!(
                                promoted.len(),
                                ring.len(),
                                "degraded with live replicas unconsumed"
                            );
                        }
                        degraded = true;
                    }
                }
            }
            prop_assert!(promoted.len() <= ring.len());
            prop_assert_eq!(&promoted[..], &ring[..promoted.len()]);
        }
    }
}
