//! Integration: streaming collection composed with the paper's
//! DR/CR/QT summary machinery, end to end over the simulated network.

use edge_kmeans::coreset::StreamingCoreset;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::net::messages::Message;
use edge_kmeans::net::wire::Precision;
use edge_kmeans::prelude::*;

fn workload(n: usize, d: usize, seed: u64) -> Matrix {
    let raw = GaussianMixture::new(n, d, 2)
        .with_separation(4.0)
        .with_seed(seed)
        .generate()
        .unwrap()
        .points;
    normalize_paper(&raw).0
}

#[test]
fn stream_then_ship_then_solve() {
    let data = workload(4_000, 24, 1);
    let (n, d) = data.shape();

    // Device: stream the data in bursts into a bounded summary.
    let mut stream = StreamingCoreset::new(2, 256, 128).with_seed(2);
    for chunk in (0..n).step_by(500) {
        let idx: Vec<usize> = (chunk..(chunk + 500).min(n)).collect();
        stream.push_batch(&data.select_rows(&idx)).unwrap();
    }
    let coreset = stream.finalize().unwrap();
    assert!((coreset.total_weight() - n as f64).abs() < 1e-6);

    // Device: project (shared seed) + quantize, then ship one message.
    let pi = JlProjection::generate(JlKind::Gaussian, d, 12, 77);
    let q = RoundingQuantizer::new(12).unwrap();
    let projected = pi.project(coreset.points()).unwrap();
    let shipped = q.quantize_matrix(&projected);
    let msg = Message::Coreset {
        points: shipped,
        weights: coreset.weights().to_vec(),
        delta: coreset.delta(),
        precision: Precision::Quantized { s: 12 },
    };
    let mut net = Network::new(1);
    let received = net.send_to_server(0, &msg).unwrap();

    // Server: solve in projected space, lift with the shared-seed Π⁺.
    let (points, weights) = match received {
        Message::Coreset {
            points, weights, ..
        } => (points, weights),
        _ => panic!("wrong message"),
    };
    let model = KMeans::new(2)
        .with_n_init(3)
        .with_seed(3)
        .fit_weighted(&points, &weights)
        .unwrap();
    let pi_server = JlProjection::generate(JlKind::Gaussian, d, 12, 77);
    let centers = pi_server.lift(&model.centers).unwrap();

    // Quality: close to the full-data reference despite streaming + DR +
    // QT + the wire round-trip.
    let reference = evaluation::reference(&data, 2, 5, 1).unwrap();
    let nc = evaluation::normalized_cost(&data, &centers, reference.cost).unwrap();
    assert!(nc < 1.5, "stream+DR+QT normalized cost {nc}");

    // And the message was genuinely small: well under 5% of raw bits.
    let norm_comm = net.stats().normalized_uplink(n, d);
    assert!(norm_comm < 0.05, "normalized comm {norm_comm}");
}

#[test]
fn streaming_matches_batch_summary_quality() {
    let data = workload(3_000, 16, 4);
    let reference = evaluation::reference(&data, 2, 5, 2).unwrap();

    // Batch: one-shot sensitivity sampling at the same budget.
    let batch = edge_kmeans::coreset::SensitivitySampler::new(2, 128)
        .with_seed(5)
        .sample(&data, None)
        .unwrap();
    // Stream: same budget via merge-and-reduce.
    let mut stream = StreamingCoreset::new(2, 256, 128).with_seed(5);
    stream.push_batch(&data).unwrap();
    let streamed = stream.finalize().unwrap();

    let solve = |c: &Coreset| {
        let model = KMeans::new(2)
            .with_n_init(3)
            .with_seed(1)
            .fit_weighted(c.points(), c.weights())
            .unwrap();
        evaluation::normalized_cost(&data, &model.centers, reference.cost).unwrap()
    };
    let nc_batch = solve(&batch);
    let nc_stream = solve(&streamed);
    assert!(nc_batch < 1.2, "batch {nc_batch}");
    assert!(
        nc_stream < nc_batch + 0.2,
        "stream {nc_stream} much worse than batch {nc_batch}"
    );
}

#[test]
fn interleaved_streams_from_multiple_devices() {
    // Two devices stream independently; the server merges their final
    // summaries — the one-round distributed story with streaming sources.
    let data = workload(2_000, 12, 6);
    let (left, right) = {
        let idx_a: Vec<usize> = (0..1000).collect();
        let idx_b: Vec<usize> = (1000..2000).collect();
        (data.select_rows(&idx_a), data.select_rows(&idx_b))
    };
    let mut streams = [
        StreamingCoreset::new(2, 128, 64).with_seed(7),
        StreamingCoreset::new(2, 128, 64).with_seed(8),
    ];
    streams[0].push_batch(&left).unwrap();
    streams[1].push_batch(&right).unwrap();
    let parts: Vec<Coreset> = streams.iter().map(|s| s.finalize().unwrap()).collect();
    let union = Coreset::merge(parts.iter()).unwrap();
    assert!((union.total_weight() - 2000.0).abs() < 1e-6);

    let model = KMeans::new(2)
        .with_n_init(3)
        .with_seed(2)
        .fit_weighted(union.points(), union.weights())
        .unwrap();
    let reference = evaluation::reference(&data, 2, 5, 3).unwrap();
    let nc = evaluation::normalized_cost(&data, &model.centers, reference.cost).unwrap();
    assert!(nc < 1.3, "two-device streamed cost {nc}");
}
