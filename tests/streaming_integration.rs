//! Integration: streaming collection composed with the paper's
//! DR/CR/QT summary machinery, end to end over the simulated network.

use edge_kmeans::coreset::StreamingCoreset;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::net::messages::Message;
use edge_kmeans::net::wire::Precision;
use edge_kmeans::prelude::*;

fn workload(n: usize, d: usize, seed: u64) -> Matrix {
    let raw = GaussianMixture::new(n, d, 2)
        .with_separation(4.0)
        .with_seed(seed)
        .generate()
        .unwrap()
        .points;
    normalize_paper(&raw).0
}

/// `true` when the CI matrix (or a local run) asks for the full-scale
/// axis: `EKM_SCALE=full` grows the streamed workloads by an order of
/// magnitude, so the sharded server solve and the merge-and-reduce tree
/// run at depth.
fn full_scale() -> bool {
    std::env::var("EKM_SCALE").is_ok_and(|v| v.eq_ignore_ascii_case("full"))
}

/// Smoke-vs-full cardinality for the stream-stage tests.
fn scaled(n_smoke: usize) -> usize {
    if full_scale() {
        n_smoke * 10
    } else {
        n_smoke
    }
}

#[test]
fn stream_stage_pipeline_is_seed_deterministic() {
    let data = workload(scaled(3_000), 20, 21);
    let (n, d) = data.shape();
    let p = SummaryParams::practical(2, n, d).with_seed(9);
    let pipe = StagePipeline::from_names("jl,stream,qt", p).unwrap();
    let run = || {
        let mut net = Network::new(1);
        let out = pipe.run(&data, &mut net).unwrap();
        (out, net.stats().clone())
    };
    let (a, stats_a) = run();
    let (b, stats_b) = run();
    assert_eq!(a.uplink_bits, b.uplink_bits);
    assert_eq!(a.summary_points, b.summary_points);
    assert_eq!(stats_a, stats_b);
    for (x, y) in a.centers.as_slice().iter().zip(b.centers.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn stream_stage_cost_within_fss_bound_factor_of_batch() {
    // Both the streamed and the batch FSS summaries are (1±ε)-coresets,
    // so the centers they induce can differ in data cost by at most the
    // bound factor (1+ε)/(1−ε) — empirically they sit within a few
    // percent of each other.
    let data = workload(scaled(3_000), 16, 22);
    let (n, d) = data.shape();
    let p = SummaryParams::practical(2, n, d).with_seed(4);
    let bound_factor = (1.0 + p.epsilon) / (1.0 - p.epsilon);

    let cost_of = |list: &str| {
        let pipe = StagePipeline::from_names(list, p.clone()).unwrap();
        let mut net = Network::new(1);
        let out = pipe.run(&data, &mut net).unwrap();
        ekm_clustering::cost::cost(&data, &out.centers).unwrap()
    };
    let streamed = cost_of("jl,stream,qt");
    let batch = cost_of("jl,fss,qt");
    let ratio = streamed / batch;
    assert!(
        ratio <= bound_factor && ratio >= 1.0 / bound_factor,
        "stream/batch cost ratio {ratio} outside the FSS bound factor {bound_factor}"
    );
    // And far inside it in practice.
    assert!(ratio < 1.3, "stream/batch cost ratio {ratio}");
}

#[test]
fn stream_stage_bounds_summary_and_uplink() {
    let data = workload(scaled(4_000), 24, 23);
    let (n, d) = data.shape();
    let p = SummaryParams::practical(2, n, d)
        .with_seed(5)
        .with_coreset_size(160);
    let shards = edge_kmeans::data::partition::partition_uniform(&data, 4, 6).unwrap();
    let pipe = StagePipeline::from_names("jl,stream,qt", p).unwrap();
    let mut net = Network::new(4);
    let out = pipe.run_shards(&shards, &mut net).unwrap();
    // Four bounded summaries, not four shards.
    assert!(out.summary_points < n / 4, "{} points", out.summary_points);
    assert!(
        net.stats().normalized_uplink(n, d) < 0.1,
        "normalized comm {}",
        net.stats().normalized_uplink(n, d)
    );
    // The whole stream's weight reaches the server.
    let reference = evaluation::reference(&data, 2, 5, 1).unwrap();
    let nc = evaluation::normalized_cost(&data, &out.centers, reference.cost).unwrap();
    assert!(nc < 1.5, "streamed pipeline cost {nc}");
}

#[test]
fn stream_then_ship_then_solve() {
    let data = workload(4_000, 24, 1);
    let (n, d) = data.shape();

    // Device: stream the data in bursts into a bounded summary.
    let mut stream = StreamingCoreset::new(2, 256, 128).with_seed(2);
    for chunk in (0..n).step_by(500) {
        let idx: Vec<usize> = (chunk..(chunk + 500).min(n)).collect();
        stream.push_batch(&data.select_rows(&idx)).unwrap();
    }
    let coreset = stream.finalize().unwrap();
    assert!((coreset.total_weight() - n as f64).abs() < 1e-6);

    // Device: project (shared seed) + quantize, then ship one message.
    let pi = JlProjection::generate(JlKind::Gaussian, d, 12, 77);
    let q = RoundingQuantizer::new(12).unwrap();
    let projected = pi.project(coreset.points()).unwrap();
    let shipped = q.quantize_matrix(&projected);
    let msg = Message::Coreset {
        points: shipped,
        weights: coreset.weights().to_vec(),
        delta: coreset.delta(),
        precision: Precision::Quantized { s: 12 },
        weights_precision: Precision::Full,
    };
    let mut net = Network::new(1);
    let received = net.send_to_server(0, &msg).unwrap();

    // Server: solve in projected space, lift with the shared-seed Π⁺.
    let (points, weights) = match received {
        Message::Coreset {
            points, weights, ..
        } => (points, weights),
        _ => panic!("wrong message"),
    };
    let model = KMeans::new(2)
        .with_n_init(3)
        .with_seed(3)
        .fit_weighted(&points, &weights)
        .unwrap();
    let pi_server = JlProjection::generate(JlKind::Gaussian, d, 12, 77);
    let centers = pi_server.lift(&model.centers).unwrap();

    // Quality: close to the full-data reference despite streaming + DR +
    // QT + the wire round-trip.
    let reference = evaluation::reference(&data, 2, 5, 1).unwrap();
    let nc = evaluation::normalized_cost(&data, &centers, reference.cost).unwrap();
    assert!(nc < 1.5, "stream+DR+QT normalized cost {nc}");

    // And the message was genuinely small: well under 5% of raw bits.
    let norm_comm = net.stats().normalized_uplink(n, d);
    assert!(norm_comm < 0.05, "normalized comm {norm_comm}");
}

#[test]
fn streaming_matches_batch_summary_quality() {
    let data = workload(3_000, 16, 4);
    let reference = evaluation::reference(&data, 2, 5, 2).unwrap();

    // Batch: one-shot sensitivity sampling at the same budget.
    let batch = edge_kmeans::coreset::SensitivitySampler::new(2, 128)
        .with_seed(5)
        .sample(&data, None)
        .unwrap();
    // Stream: same budget via merge-and-reduce.
    let mut stream = StreamingCoreset::new(2, 256, 128).with_seed(5);
    stream.push_batch(&data).unwrap();
    let streamed = stream.finalize().unwrap();

    let solve = |c: &Coreset| {
        let model = KMeans::new(2)
            .with_n_init(3)
            .with_seed(1)
            .fit_weighted(c.points(), c.weights())
            .unwrap();
        evaluation::normalized_cost(&data, &model.centers, reference.cost).unwrap()
    };
    let nc_batch = solve(&batch);
    let nc_stream = solve(&streamed);
    assert!(nc_batch < 1.2, "batch {nc_batch}");
    assert!(
        nc_stream < nc_batch + 0.2,
        "stream {nc_stream} much worse than batch {nc_batch}"
    );
}

#[test]
fn interleaved_streams_from_multiple_devices() {
    // Two devices stream independently; the server merges their final
    // summaries — the one-round distributed story with streaming sources.
    let data = workload(2_000, 12, 6);
    let (left, right) = {
        let idx_a: Vec<usize> = (0..1000).collect();
        let idx_b: Vec<usize> = (1000..2000).collect();
        (data.select_rows(&idx_a), data.select_rows(&idx_b))
    };
    let mut streams = [
        StreamingCoreset::new(2, 128, 64).with_seed(7),
        StreamingCoreset::new(2, 128, 64).with_seed(8),
    ];
    streams[0].push_batch(&left).unwrap();
    streams[1].push_batch(&right).unwrap();
    let parts: Vec<Coreset> = streams.iter().map(|s| s.finalize().unwrap()).collect();
    let union = Coreset::merge(parts.iter()).unwrap();
    assert!((union.total_weight() - 2000.0).abs() < 1e-6);

    let model = KMeans::new(2)
        .with_n_init(3)
        .with_seed(2)
        .fit_weighted(union.points(), union.weights())
        .unwrap();
    let reference = evaluation::reference(&data, 2, 5, 3).unwrap();
    let nc = evaluation::normalized_cost(&data, &model.centers, reference.cost).unwrap();
    assert!(nc < 1.3, "two-device streamed cost {nc}");
}
