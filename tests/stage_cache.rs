//! Stage-output cache equivalence: an `ekm sweep`-style sequence of
//! compositions sharing a `jl,fss` prefix, run with one shared
//! [`StageCache`], must (a) compute the shared prefix exactly once and
//! (b) produce outputs — centers, run-digest fingerprints, uplink bits,
//! per-source `NetworkStats`, deterministic op counts — bit-identical
//! to an uncached sweep.

use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::net::tcp::RunDigest;
use edge_kmeans::net::NetworkStats;
use edge_kmeans::prelude::*;

const SOURCES: usize = 4;

fn workload(seed: u64) -> Matrix {
    let ds = MnistLike::new(800, 10).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

fn params(data: &Matrix) -> SummaryParams {
    let (n, d) = data.shape();
    SummaryParams::practical(2, n, d).with_seed(23)
}

/// One sweep entry: the run output plus the transport's final counters
/// and the end-of-run digest (the "fingerprint" a TCP deployment would
/// exchange to verify bit-identity).
struct SweepRow {
    name: String,
    out: RunOutput,
    stats: NetworkStats,
    digest: RunDigest,
}

/// Runs every composition over fresh networks, optionally sharing one
/// stage cache across the whole sweep.
fn sweep(lists: &[&str], data: &Matrix, mut cache: Option<&mut StageCache>) -> Vec<SweepRow> {
    lists
        .iter()
        .map(|list| {
            let pipe = StagePipeline::from_names(list, params(data)).unwrap();
            let (out, stats) = if pipe.is_distributed() {
                let shards = partition_uniform(data, SOURCES, pipe.params().seed).unwrap();
                let mut net = Network::new(SOURCES);
                let out = match cache.as_deref_mut() {
                    Some(cache) => pipe.run_shards_cached(&shards, &mut net, cache),
                    None => pipe.run_shards(&shards, &mut net),
                }
                .unwrap();
                (out, net.stats().clone())
            } else {
                let mut net = Network::new(1);
                let out = match cache.as_deref_mut() {
                    Some(cache) => pipe.run_cached(data, &mut net, cache),
                    None => pipe.run(data, &mut net),
                }
                .unwrap();
                (out, net.stats().clone())
            };
            let digest = RunDigest::new(&stats, &out.centers);
            SweepRow {
                name: pipe.name(),
                out,
                stats,
                digest,
            }
        })
        .collect()
}

fn assert_rows_identical(cached: &[SweepRow], uncached: &[SweepRow]) {
    assert_eq!(cached.len(), uncached.len());
    for (c, u) in cached.iter().zip(uncached) {
        let label = &c.name;
        assert_eq!(c.name, u.name);
        assert_eq!(c.digest, u.digest, "{label}: run digest (fingerprint)");
        assert!(
            c.out.centers.approx_eq(&u.out.centers, 0.0),
            "{label}: centers differ"
        );
        assert_eq!(c.out.uplink_bits, u.out.uplink_bits, "{label}: uplink");
        assert_eq!(
            c.out.downlink_bits, u.out.downlink_bits,
            "{label}: downlink"
        );
        assert_eq!(c.out.source_ops, u.out.source_ops, "{label}: op counts");
        assert_eq!(
            c.out.summary_points, u.out.summary_points,
            "{label}: summary size"
        );
        assert_eq!(c.stats, u.stats, "{label}: per-source network stats");
    }
}

#[test]
fn cached_sweep_is_bit_identical_to_uncached() {
    let data = workload(3);
    // The acceptance shape: one jl,fss prefix under every QT width.
    let lists = [
        "jl,fss",
        "jl,fss,qt:4",
        "jl,fss,qt:8",
        "jl,fss,qt:12",
        "jl,fss,qt:8,jl",
    ];
    let mut cache = StageCache::new();
    let cached = sweep(&lists, &data, Some(&mut cache));
    let uncached = sweep(&lists, &data, None);
    assert_rows_identical(&cached, &uncached);

    // The shared prefix ran once: 2 cold stages (jl, fss) plus the last
    // composition's trailing jl; every other cacheable execution hit.
    assert_eq!(cache.misses(), 3, "jl, fss, trailing jl");
    assert_eq!(cache.hits(), 2 * (lists.len() as u64 - 1));
}

#[test]
fn cached_sweep_covers_streaming_shards() {
    let data = workload(5);
    let lists = ["jl,stream,qt:6", "jl,stream,qt:10", "jl,stream"];
    let mut cache = StageCache::new();
    let cached = sweep(&lists, &data, Some(&mut cache));
    let uncached = sweep(&lists, &data, None);
    assert_rows_identical(&cached, &uncached);
    assert_eq!(cache.misses(), 2, "jl, stream");
    assert_eq!(cache.hits(), 4);
}

#[test]
fn budget_bounded_sweep_stays_bit_identical_under_eviction() {
    // A cache squeezed hard enough to evict on every store must still
    // produce bit-identical outputs — evictions only cost recomputation.
    let data = workload(9);
    let lists = ["jl,fss,qt:4", "jl,fss,qt:8", "jl,fss,qt:8,jl"];
    let mut tight = StageCache::with_budget(1);
    let cached = sweep(&lists, &data, Some(&mut tight));
    let uncached = sweep(&lists, &data, None);
    assert_rows_identical(&cached, &uncached);
    assert!(tight.evictions() > 0, "the 1-byte budget must evict");
    assert!(tight.held_bytes() > 0, "one oversized entry is admitted");

    // A budget big enough for everything behaves like the unbounded
    // cache: same hit pattern, no evictions.
    let mut roomy = StageCache::with_budget(1 << 30);
    let roomy_rows = sweep(&lists, &data, Some(&mut roomy));
    assert_rows_identical(&roomy_rows, &uncached);
    assert_eq!(roomy.evictions(), 0);
    assert_eq!(roomy.misses(), 3, "jl, fss, trailing jl");
}

#[test]
fn interactive_stages_always_run_live() {
    // disPCA/disSS traffic must flow through the transport on every
    // run — the cache holds only source-side stage outputs, so a
    // repeated distributed pipeline still uplinks its summaries.
    let data = workload(7);
    let lists = ["dispca,disss", "dispca,disss"];
    let mut cache = StageCache::new();
    let rows = sweep(&lists, &data, Some(&mut cache));
    assert_eq!(cache.hits() + cache.misses(), 0, "nothing cacheable");
    assert_eq!(rows[0].digest, rows[1].digest);
    assert!(rows[1].out.uplink_bits > 0);
}
