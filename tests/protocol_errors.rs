//! Protocol error paths must surface as *typed errors*, never hangs:
//! a source that disconnects mid-stage, a peer that answers with the
//! wrong frame type, and a stale configuration fingerprint at the
//! handshake — on both the in-process channel backend and the
//! event-driven TCP backend.

use edge_kmeans::core::executor::SourceExecutor;
use edge_kmeans::core::CoreError;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::net::event::{EventServerBinding, EventTcpSource};
use edge_kmeans::net::protocol::{
    channel_pairs, Command, CommandTransport, Response, SourceEndpoint,
};
use edge_kmeans::net::NetError;
use edge_kmeans::prelude::*;
use std::time::Duration;

const FP: u64 = 0x0DD5_EED5;

fn workload(n: usize, d: usize, seed: u64) -> Matrix {
    let raw = GaussianMixture::new(n, d, 2)
        .with_separation(4.0)
        .with_seed(seed)
        .generate()
        .unwrap()
        .points;
    edge_kmeans::data::normalize::normalize_paper(&raw).0
}

fn pipeline(list: &str, n: usize, d: usize) -> StagePipeline {
    StagePipeline::from_names(list, SummaryParams::practical(2, n, d).with_seed(5)).unwrap()
}

#[test]
fn channel_source_disconnect_mid_stage_is_typed() {
    let pipe = pipeline("dispca,disss", 200, 12);
    let (mut hub, mut endpoints) = channel_pairs(2);
    let data = workload(200, 12, 1);
    let shards = partition_uniform(&data, 2, 3).unwrap();
    std::thread::scope(|scope| {
        // Source 0 runs honestly; source 1 answers the describe round,
        // then vanishes mid-stage.
        let (e1, e0) = (endpoints.pop().unwrap(), endpoints.pop().unwrap());
        let s0 = shards[0].clone();
        let stages = pipe.stages();
        let params = pipe.params();
        scope.spawn(move || {
            let mut e0 = e0;
            let _ = SourceExecutor::new(stages, params, 0, 2, s0).serve(&mut e0);
        });
        scope.spawn(move || {
            let mut e1 = e1;
            let cmd = e1.recv_command().unwrap();
            assert_eq!(cmd, Command::Describe);
            e1.send_response(Response::Done {
                rows: 100,
                cols: 12,
                ops: 0,
                seconds: 0.0,
            })
            .unwrap();
            // Dropped here: the driver's next recv must fail, not hang.
        });
        let err = pipe.run_driver(&mut hub).unwrap_err();
        assert!(
            matches!(err, CoreError::Net(NetError::Transport { .. })),
            "expected a typed transport error, got {err:?}"
        );
    });
}

#[test]
fn channel_response_type_mismatch_is_typed() {
    let pipe = pipeline("jl,fss", 200, 12);
    let (mut hub, mut endpoints) = channel_pairs(1);
    std::thread::scope(|scope| {
        let mut ep = endpoints.pop().unwrap();
        scope.spawn(move || {
            // Answer the describe round with a Fin — the wrong type.
            let _ = ep.recv_command().unwrap();
            ep.send_response(Response::Fin {
                uplink_bits: 0,
                downlink_bits: 0,
            })
            .unwrap();
            // The driver aborts; drain the abort so the send doesn't
            // linger.
            let _ = ep.recv_command();
        });
        let err = pipe.run_driver(&mut hub).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Net(NetError::ProtocolViolation {
                    expected: "a done response",
                    ..
                })
            ),
            "expected a protocol violation, got {err:?}"
        );
    });
}

#[test]
fn executor_rejects_mismatched_deliver_payload() {
    // A Deliver with no pending interactive phase must be refused.
    let (mut hub, mut endpoints) = channel_pairs(1);
    let pipe = pipeline("jl,fss", 100, 8);
    std::thread::scope(|scope| {
        let shard = workload(100, 8, 2);
        let stages = pipe.stages();
        let params = pipe.params();
        let handle = scope.spawn(move || {
            let mut ep = endpoints.pop().unwrap();
            SourceExecutor::new(stages, params, 0, 1, shard).serve(&mut ep)
        });
        hub.send(
            0,
            &Command::Deliver {
                payload: edge_kmeans::net::Payload::of(
                    &edge_kmeans::net::messages::Message::SampleAllocation { size: 3 },
                ),
            },
        )
        .unwrap();
        match hub.recv(0).unwrap() {
            Response::Err { reason } => {
                assert!(reason.contains("no downlink payload"), "{reason}");
            }
            other => panic!("expected an err response, got {other:?}"),
        }
        let err = handle.join().unwrap().unwrap_err();
        assert!(matches!(
            err,
            CoreError::Net(NetError::ProtocolViolation { .. })
        ));
    });
}

#[test]
fn event_tcp_source_disconnect_mid_stage_is_typed() {
    let pipe = pipeline("dispca,disss", 240, 10);
    let data = workload(240, 10, 3);
    let shards = partition_uniform(&data, 2, 4).unwrap();
    let binding = EventServerBinding::bind("127.0.0.1:0").unwrap();
    let addr = binding.local_addr().unwrap();
    std::thread::scope(|scope| {
        let s0 = shards[0].clone();
        let stages = pipe.stages();
        let params = pipe.params();
        scope.spawn(move || {
            let mut ep = EventTcpSource::connect(addr, 0, 2, FP, Duration::from_secs(10)).unwrap();
            let _ = SourceExecutor::new(stages, params, 0, 2, s0).serve(&mut ep);
        });
        scope.spawn(move || {
            let mut ep = EventTcpSource::connect(addr, 1, 2, FP, Duration::from_secs(10)).unwrap();
            // Answer the describe round, then drop the socket.
            match ep.recv_command().unwrap() {
                Command::Describe => ep
                    .send_response(Response::Done {
                        rows: 120,
                        cols: 10,
                        ops: 0,
                        seconds: 0.0,
                    })
                    .unwrap(),
                other => panic!("unexpected {other:?}"),
            }
        });
        let mut net = binding.accept(2, FP).unwrap();
        let err = pipe.run_driver(&mut net).unwrap_err();
        assert!(
            matches!(err, CoreError::Net(NetError::Transport { .. })),
            "expected a typed transport error, got {err:?}"
        );
    });
}

#[test]
fn event_tcp_stale_fingerprint_fails_handshake() {
    let binding = EventServerBinding::bind("127.0.0.1:0").unwrap();
    let addr = binding.local_addr().unwrap();
    let src = std::thread::spawn(move || {
        EventTcpSource::connect(addr, 0, 1, FP ^ 0xF00, Duration::from_secs(10))
    });
    let err = binding.accept(1, FP).unwrap_err();
    assert!(
        matches!(err, NetError::Handshake { ref reason } if reason.contains("fingerprint")),
        "{err:?}"
    );
    assert!(src.join().unwrap().is_err());
}

#[test]
fn driver_validation_aborts_sources_with_the_reason() {
    // `fss` over two sources is invalid; the driver must fail with the
    // engine's error and the executors must be told to abort (typed
    // RemoteAbort), not left waiting.
    let pipe = pipeline("fss", 200, 8);
    let data = workload(200, 8, 6);
    let shards = partition_uniform(&data, 2, 5).unwrap();
    let (mut hub, endpoints) = channel_pairs(2);
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (mut ep, shard))| {
                let stages = pipe.stages();
                let params = pipe.params();
                scope.spawn(move || SourceExecutor::new(stages, params, i, 2, shard).serve(&mut ep))
            })
            .collect();
        let err = pipe.run_driver(&mut hub).unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidConfig { .. }),
            "driver error: {err:?}"
        );
        for handle in handles {
            let err = handle.join().unwrap().unwrap_err();
            match err {
                CoreError::Net(NetError::RemoteAbort { reason }) => {
                    assert!(reason.contains("single-source"), "{reason}");
                }
                other => panic!("expected a remote abort, got {other:?}"),
            }
        }
    });
}
