//! Protocol fault paths must surface as *typed outcomes*, never hangs:
//! a source that disconnects mid-stage degrades the run, a peer that
//! answers with the wrong frame type is a typed violation, a stale
//! configuration fingerprint fails the handshake, a missed command
//! deadline is reissued once and then degraded around — on both the
//! in-process channel backend and the event-driven TCP backend — and
//! journal records round-trip bitwise (with truncated tails as typed
//! errors, not panics).

use edge_kmeans::core::executor::SourceExecutor;
use edge_kmeans::core::journal::{
    read_entry, read_header, write_header, JournalEntry, JournalHeader,
};
use edge_kmeans::core::CoreError;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::net::event::{EventServerBinding, EventTcpSource};
use edge_kmeans::net::protocol::{
    channel_pairs, Command, CommandTransport, DeadlinePolicy, Response, SourceEndpoint,
};
use edge_kmeans::net::NetError;
use edge_kmeans::prelude::*;
use proptest::prelude::*;
use std::io::Cursor;
use std::time::Duration;

const FP: u64 = 0x0DD5_EED5;

fn workload(n: usize, d: usize, seed: u64) -> Matrix {
    let raw = GaussianMixture::new(n, d, 2)
        .with_separation(4.0)
        .with_seed(seed)
        .generate()
        .unwrap()
        .points;
    edge_kmeans::data::normalize::normalize_paper(&raw).0
}

fn pipeline(list: &str, n: usize, d: usize) -> StagePipeline {
    StagePipeline::from_names(list, SummaryParams::practical(2, n, d).with_seed(5)).unwrap()
}

#[test]
fn channel_source_disconnect_mid_stage_degrades_the_run() {
    let pipe = pipeline("dispca,disss", 200, 12);
    let (mut hub, mut endpoints) = channel_pairs(2);
    let data = workload(200, 12, 1);
    let shards = partition_uniform(&data, 2, 3).unwrap();
    let out = std::thread::scope(|scope| {
        // Source 0 runs honestly; source 1 answers the describe round,
        // then vanishes mid-stage. The driver completes on source 0 and
        // reports the dropped shard.
        let (e1, e0) = (endpoints.pop().unwrap(), endpoints.pop().unwrap());
        let s0 = shards[0].clone();
        let stages = pipe.stages();
        let params = pipe.params();
        scope.spawn(move || {
            let mut e0 = e0;
            let _ = SourceExecutor::new(stages, params, 0, 2, s0).serve(&mut e0);
        });
        scope.spawn(move || {
            let mut e1 = e1;
            let cmd = e1.recv_command().unwrap();
            assert_eq!(cmd, Command::Describe);
            e1.send_response(Response::Done {
                round: 1,
                rows: 100,
                cols: 12,
                ops: 0,
                seconds: 0.0,
            })
            .unwrap();
            // Dropped here: the driver must degrade, not hang or abort.
        });
        pipe.run_driver(&mut hub).unwrap()
    });
    let record = out.degraded.expect("the run must report the lost source");
    assert_eq!(record.lost_sources.len(), 1);
    assert_eq!(record.lost_sources[0].0, 1);
    assert_eq!(record.rows_lost, 100);
    assert_eq!(record.rows_total, 200);
}

#[test]
fn missed_deadline_is_reissued_once_then_degraded_around() {
    let n = 200;
    let d = 12;
    let params = SummaryParams::practical(2, n, d)
        .with_seed(5)
        .with_deadline(DeadlinePolicy::uniform(Duration::from_millis(150)));
    let pipe = StagePipeline::from_names("dispca,disss", params).unwrap();
    let data = workload(n, d, 4);
    let shards = partition_uniform(&data, 2, 3).unwrap();
    let (mut hub, mut endpoints) = channel_pairs(2);
    let out = std::thread::scope(|scope| {
        let (e1, e0) = (endpoints.pop().unwrap(), endpoints.pop().unwrap());
        let s0 = shards[0].clone();
        let stages = pipe.stages();
        let params = pipe.params();
        scope.spawn(move || {
            let mut e0 = e0;
            let _ = SourceExecutor::new(stages, params, 0, 2, s0).serve(&mut e0);
        });
        scope.spawn(move || {
            let mut e1 = e1;
            // The driver announces its deadline policy first.
            let cmd = e1.recv_command().unwrap();
            assert!(matches!(cmd, Command::Deadline { ms: 150 }));
            assert_eq!(e1.recv_command().unwrap(), Command::Describe);
            e1.send_response(Response::Done {
                round: 1,
                rows: 100,
                cols: 12,
                ops: 0,
                seconds: 0.0,
            })
            .unwrap();
            // Go silent on the stage round: the driver's command
            // deadline expires and it reissues the round once...
            let stage = e1.recv_command().unwrap();
            assert!(matches!(stage, Command::Stage { .. }), "{stage:?}");
            let reissue = e1.recv_command().unwrap();
            assert!(
                matches!(reissue, Command::Reissue { round: 2, .. }),
                "{reissue:?}"
            );
            // ...and stays silent again: dropped on the second miss.
        });
        pipe.run_driver(&mut hub).unwrap()
    });
    let record = out.degraded.expect("the stalled source must be dropped");
    assert_eq!(record.lost_sources.len(), 1);
    assert_eq!(record.lost_sources[0].0, 1);
}

#[test]
fn reissue_is_answered_from_the_executor_response_cache() {
    let (mut hub, mut endpoints) = channel_pairs(1);
    let pipe = pipeline("jl,fss", 100, 8);
    std::thread::scope(|scope| {
        let shard = workload(100, 8, 2);
        let stages = pipe.stages();
        let params = pipe.params();
        let handle = scope.spawn(move || {
            let mut ep = endpoints.pop().unwrap();
            SourceExecutor::new(stages, params, 0, 1, shard).serve(&mut ep)
        });
        hub.send(0, &Command::Describe).unwrap();
        let first = hub.recv(0).unwrap();
        assert!(matches!(first, Response::Done { round: 1, .. }));

        // A reissue of the current round must resend the cached bytes —
        // no recomputation, bit-identical.
        hub.send(
            0,
            &Command::Reissue {
                round: 1,
                cmd: Box::new(Command::Describe),
            },
        )
        .unwrap();
        let replayed = hub.recv(0).unwrap();
        assert_eq!(replayed.encode(), first.encode());

        // A resume probe reports the executor's round and fingerprint.
        hub.send(0, &Command::Resume { round: 1 }).unwrap();
        match hub.recv(0).unwrap() {
            Response::Resumed { round, .. } => assert_eq!(round, 1),
            other => panic!("expected a resumed response, got {other:?}"),
        }

        // A reissue for a round the executor never saw is a violation:
        // the executor reports the reason in a best-effort `Err` frame,
        // then hangs up — so the driver learns *why* before degrading.
        hub.send(
            0,
            &Command::Reissue {
                round: 7,
                cmd: Box::new(Command::Describe),
            },
        )
        .unwrap();
        match hub.recv(0).unwrap() {
            Response::Err { reason } => {
                assert!(reason.contains("reissue"), "{reason}");
            }
            other => panic!("expected an err response, got {other:?}"),
        }
        let err = handle.join().unwrap().unwrap_err();
        assert!(matches!(
            err,
            CoreError::Net(NetError::ProtocolViolation {
                context: "reissue",
                ..
            })
        ));
    });
}

#[test]
fn channel_response_type_mismatch_is_typed() {
    let pipe = pipeline("jl,fss", 200, 12);
    let (mut hub, mut endpoints) = channel_pairs(1);
    std::thread::scope(|scope| {
        let mut ep = endpoints.pop().unwrap();
        scope.spawn(move || {
            // Answer the describe round with a Fin — the wrong type.
            let _ = ep.recv_command().unwrap();
            ep.send_response(Response::Fin {
                round: 1,
                uplink_bits: 0,
                downlink_bits: 0,
            })
            .unwrap();
            // The driver aborts; drain the abort so the send doesn't
            // linger.
            let _ = ep.recv_command();
        });
        let err = pipe.run_driver(&mut hub).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Net(NetError::ProtocolViolation {
                    expected: "a done response",
                    ..
                })
            ),
            "expected a protocol violation, got {err:?}"
        );
    });
}

#[test]
fn executor_rejects_mismatched_deliver_payload() {
    // A Deliver with no pending interactive phase must be refused.
    let (mut hub, mut endpoints) = channel_pairs(1);
    let pipe = pipeline("jl,fss", 100, 8);
    std::thread::scope(|scope| {
        let shard = workload(100, 8, 2);
        let stages = pipe.stages();
        let params = pipe.params();
        let handle = scope.spawn(move || {
            let mut ep = endpoints.pop().unwrap();
            SourceExecutor::new(stages, params, 0, 1, shard).serve(&mut ep)
        });
        hub.send(
            0,
            &Command::Deliver {
                payload: edge_kmeans::net::Payload::of(
                    &edge_kmeans::net::messages::Message::SampleAllocation { size: 3 },
                ),
            },
        )
        .unwrap();
        match hub.recv(0).unwrap() {
            Response::Err { reason } => {
                assert!(reason.contains("no downlink payload"), "{reason}");
            }
            other => panic!("expected an err response, got {other:?}"),
        }
        let err = handle.join().unwrap().unwrap_err();
        assert!(matches!(
            err,
            CoreError::Net(NetError::ProtocolViolation { .. })
        ));
    });
}

#[test]
fn event_tcp_source_disconnect_mid_stage_degrades_the_run() {
    let pipe = pipeline("dispca,disss", 240, 10);
    let data = workload(240, 10, 3);
    let shards = partition_uniform(&data, 2, 4).unwrap();
    let binding = EventServerBinding::bind("127.0.0.1:0").unwrap();
    let addr = binding.local_addr().unwrap();
    let out = std::thread::scope(|scope| {
        let s0 = shards[0].clone();
        let stages = pipe.stages();
        let params = pipe.params();
        scope.spawn(move || {
            let mut ep = EventTcpSource::connect(addr, 0, 2, FP, Duration::from_secs(10)).unwrap();
            let _ = SourceExecutor::new(stages, params, 0, 2, s0).serve(&mut ep);
        });
        scope.spawn(move || {
            let mut ep = EventTcpSource::connect(addr, 1, 2, FP, Duration::from_secs(10)).unwrap();
            // Answer the describe round, then drop the socket.
            match ep.recv_command().unwrap() {
                Command::Describe => ep
                    .send_response(Response::Done {
                        round: 1,
                        rows: 120,
                        cols: 10,
                        ops: 0,
                        seconds: 0.0,
                    })
                    .unwrap(),
                other => panic!("unexpected {other:?}"),
            }
        });
        let mut net = binding.accept(2, FP).unwrap();
        pipe.run_driver(&mut net).unwrap()
    });
    let record = out.degraded.expect("the run must report the lost source");
    assert_eq!(record.lost_sources.len(), 1);
    assert_eq!(record.lost_sources[0].0, 1);
    assert_eq!(record.rows_lost, 120);
    assert_eq!(record.rows_total, 240);
}

#[test]
fn event_tcp_stale_fingerprint_fails_handshake() {
    let binding = EventServerBinding::bind("127.0.0.1:0").unwrap();
    let addr = binding.local_addr().unwrap();
    let src = std::thread::spawn(move || {
        EventTcpSource::connect(addr, 0, 1, FP ^ 0xF00, Duration::from_secs(10))
    });
    let err = binding.accept(1, FP).unwrap_err();
    assert!(
        matches!(err, NetError::Handshake { ref reason } if reason.contains("fingerprint")),
        "{err:?}"
    );
    assert!(src.join().unwrap().is_err());
}

#[test]
fn driver_validation_aborts_sources_with_the_reason() {
    // `fss` over two sources is invalid; the driver must fail with the
    // engine's error and the executors must be told to abort (typed
    // RemoteAbort), not left waiting.
    let pipe = pipeline("fss", 200, 8);
    let data = workload(200, 8, 6);
    let shards = partition_uniform(&data, 2, 5).unwrap();
    let (mut hub, endpoints) = channel_pairs(2);
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (mut ep, shard))| {
                let stages = pipe.stages();
                let params = pipe.params();
                scope.spawn(move || SourceExecutor::new(stages, params, i, 2, shard).serve(&mut ep))
            })
            .collect();
        let err = pipe.run_driver(&mut hub).unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidConfig { .. }),
            "driver error: {err:?}"
        );
        for handle in handles {
            let err = handle.join().unwrap().unwrap_err();
            match err {
                CoreError::Net(NetError::RemoteAbort { reason }) => {
                    assert!(reason.contains("single-source"), "{reason}");
                }
                other => panic!("expected a remote abort, got {other:?}"),
            }
        }
    });
}

// ---------------------------------------------------------------------
// Journal record encoding: property tests.
// ---------------------------------------------------------------------

fn short_reason() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 0..24)
        .prop_map(|v| v.iter().map(|b| (b'a' + b) as char).collect())
}

fn journal_entry() -> impl Strategy<Value = JournalEntry> {
    prop_oneof![
        (0u32..64, proptest::collection::vec(0u8..=255, 0..96))
            .prop_map(|(source, bytes)| JournalEntry::Cmd { source, bytes }),
        (0u32..64, proptest::collection::vec(0u8..=255, 0..96))
            .prop_map(|(source, bytes)| JournalEntry::Resp { source, bytes }),
        (0u32..64, 0u8..2, short_reason()).prop_map(|(source, via, reason)| {
            JournalEntry::Lost {
                source,
                via_send: via == 1,
                reason,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary command rounds survive encode/decode bitwise.
    #[test]
    fn journal_entries_roundtrip(entries in proptest::collection::vec(journal_entry(), 0..12)) {
        let mut buf = Vec::new();
        write_header(&mut buf, &JournalHeader { sources: 3, fingerprint: FP }).unwrap();
        for e in &entries {
            e.write_to(&mut buf).unwrap();
        }
        let mut r = Cursor::new(buf.as_slice());
        let header = read_header(&mut r).unwrap();
        prop_assert_eq!(header, JournalHeader { sources: 3, fingerprint: FP });
        let mut decoded = Vec::new();
        while let Some(e) = read_entry(&mut r).unwrap() {
            decoded.push(e);
        }
        prop_assert_eq!(decoded, entries);
    }

    /// A journal cut anywhere mid-record is a typed error (or a clean
    /// EOF when the cut lands on a record boundary) — never a panic,
    /// and never a phantom record.
    #[test]
    fn truncated_journal_tails_are_typed_errors(
        entries in proptest::collection::vec(journal_entry(), 1..6),
        frac in 0.0f64..1.0,
    ) {
        let mut head = Vec::new();
        write_header(&mut head, &JournalHeader { sources: 2, fingerprint: FP }).unwrap();
        let header_len = head.len();
        let mut buf = head;
        let mut boundaries = vec![buf.len()];
        for e in &entries {
            e.write_to(&mut buf).unwrap();
            boundaries.push(buf.len());
        }
        let cut = header_len + ((buf.len() - header_len) as f64 * frac) as usize;
        let truncated = &buf[..cut];
        let mut r = Cursor::new(truncated);
        read_header(&mut r).unwrap();
        let mut good = 0usize;
        let outcome = loop {
            match read_entry(&mut r) {
                Ok(Some(_)) => good += 1,
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        // Every fully-written record before the cut decodes; the cut
        // itself is either a clean EOF (on a boundary) or a typed error.
        let full_records = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(good, full_records);
        if boundaries.contains(&cut) {
            prop_assert!(outcome.is_ok());
        } else {
            prop_assert!(matches!(outcome, Err(CoreError::Journal { .. })));
        }
    }
}
