//! Capstone tests: the paper's §7.4 "Summary of Observations", each
//! asserted end-to-end on the reproduction.
//!
//! 1. Solving k-means on DR/CR summaries gives a reasonably good solution
//!    at a drastically reduced communication cost without heavy device
//!    compute.
//! 2. Suitable DR+CR combinations beat the state-of-the-art baselines on
//!    communication and/or complexity at similar quality.
//! 3. Adding suitably configured quantization further reduces
//!    communication without adversely affecting the other metrics.

use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::prelude::*;

fn workload(seed: u64) -> Matrix {
    let ds = MnistLike::new(1800, 14).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

/// Best-of-3 source time, for the one *absolute* wall-clock bound below.
/// The pipelines are deterministic given their seed, so repeated runs
/// produce identical outputs and the minimum isolates intrinsic compute
/// from scheduler noise. All *relative* complexity comparisons use
/// `RunOutput::source_ops` instead — deterministic operation counts that
/// cannot flake under parallel test load (the ~1-in-5 CI flake the
/// wall-clock 2× ratios used to cause).
fn best_source_seconds(mut run: impl FnMut() -> RunOutput) -> f64 {
    (0..3)
        .map(|_| run().source_seconds)
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn observation_1_summaries_give_good_cheap_solutions() {
    let data = workload(1);
    let (n, d) = data.shape();
    let reference = evaluation::reference(&data, 2, 5, 1).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(2);

    let mut net = Network::new(1);
    let nr = NoReduction::new(params.clone())
        .run(&data, &mut net)
        .unwrap();
    let summary = JlFssJl::new(params.clone()).run(&data, &mut net).unwrap();

    // "reasonably good solution"
    let nc = evaluation::normalized_cost(&data, &summary.centers, reference.cost).unwrap();
    assert!(nc < 1.35, "normalized cost {nc}");
    // "drastically reduced communication cost" — >95% below raw.
    assert!(
        (summary.uplink_bits as f64) < 0.05 * nr.uplink_bits as f64,
        "summary bits {} vs raw {}",
        summary.uplink_bits,
        nr.uplink_bits
    );
    // "without incurring a high complexity at data sources" — an
    // absolute sanity bound (no count to compare against), with a wide
    // margin so a loaded CI machine cannot flake it.
    let best = best_source_seconds(|| {
        JlFssJl::new(params.clone())
            .run(&data, &mut Network::new(1))
            .unwrap()
    });
    assert!(best < 2.0, "device time {best}s");
}

#[test]
fn observation_2_proposed_beat_baselines() {
    let data = workload(3);
    let (n, d) = data.shape();
    let reference = evaluation::reference(&data, 2, 5, 2).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(4);

    // Centralized: Algorithm 1 vs the FSS baseline.
    let mut net = Network::new(1);
    let fss = Fss::new(params.clone()).run(&data, &mut net).unwrap();
    let alg1 = JlFss::new(params.clone()).run(&data, &mut net).unwrap();
    let nc_fss = evaluation::normalized_cost(&data, &fss.centers, reference.cost).unwrap();
    let nc_alg1 = evaluation::normalized_cost(&data, &alg1.centers, reference.cost).unwrap();
    assert!(
        alg1.uplink_bits < fss.uplink_bits,
        "Alg 1 must cut bits vs FSS"
    );
    // Deterministic complexity comparison: JL-first avoids the exact SVD
    // in the full d-dimensional space.
    assert!(
        alg1.source_ops < fss.source_ops,
        "Alg 1 must cut device complexity vs FSS ({} vs {} ops)",
        alg1.source_ops,
        fss.source_ops
    );
    assert!(
        nc_alg1 < nc_fss + 0.35,
        "similar quality: {nc_alg1} vs {nc_fss}"
    );

    // Distributed: Algorithm 4 vs the BKLW baseline.
    let shards = partition_uniform(&data, 10, 5).unwrap();
    let mut net_a = Network::new(10);
    let bklw = Bklw::new(params.clone()).run(&shards, &mut net_a).unwrap();
    let mut net_b = Network::new(10);
    let alg4 = JlBklw::new(params).run(&shards, &mut net_b).unwrap();
    let nc_bklw = evaluation::normalized_cost(&data, &bklw.centers, reference.cost).unwrap();
    let nc_alg4 = evaluation::normalized_cost(&data, &alg4.centers, reference.cost).unwrap();
    assert!(
        alg4.uplink_bits < bklw.uplink_bits,
        "Alg 4 must cut bits vs BKLW"
    );
    assert!(
        nc_alg4 < nc_bklw + 0.35,
        "similar quality: {nc_alg4} vs {nc_bklw}"
    );
}

#[test]
fn observation_3_quantization_is_free_bits() {
    let data = workload(6);
    let (n, d) = data.shape();
    let reference = evaluation::reference(&data, 2, 5, 3).unwrap();
    let base = SummaryParams::practical(2, n, d).with_seed(7);

    let q = RoundingQuantizer::new(10).unwrap();
    let base_q = base.clone().with_quantizer(q);
    let mut net = Network::new(1);
    let plain = JlFssJl::new(base.clone()).run(&data, &mut net).unwrap();
    let quant = JlFssJl::new(base_q.clone()).run(&data, &mut net).unwrap();

    // "further reduce the communication cost by 2/3" (paper §7.3.2 (i)).
    assert!(
        (quant.uplink_bits as f64) < 0.45 * plain.uplink_bits as f64,
        "quantized {} vs plain {}",
        quant.uplink_bits,
        plain.uplink_bits
    );
    // "without increasing the k-means cost"
    let nc_plain = evaluation::normalized_cost(&data, &plain.centers, reference.cost).unwrap();
    let nc_quant = evaluation::normalized_cost(&data, &quant.centers, reference.cost).unwrap();
    assert!(
        nc_quant < nc_plain + 0.05,
        "quantized cost {nc_quant} vs plain {nc_plain}"
    );
    // "or the running time": quantization adds only an O(n·d) rounding
    // pass on the summary — negligible next to the summary construction
    // (deterministic operation counts, so this cannot flake).
    assert!(
        quant.source_ops < plain.source_ops + plain.source_ops / 2,
        "QT ops {} vs plain {}",
        quant.source_ops,
        plain.source_ops
    );
}

#[test]
fn headline_order_matters_tradeoff() {
    // §4.3's central finding on one dataset: Alg 1 is fastest-at-device,
    // Alg 2 is cheapest-to-transmit, Alg 3 achieves both at once.
    let data = workload(8);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d).with_seed(9);
    let mut net = Network::new(1);
    let alg1 = JlFss::new(params.clone()).run(&data, &mut net).unwrap();
    let alg2 = FssJl::new(params.clone()).run(&data, &mut net).unwrap();
    let alg3 = JlFssJl::new(params.clone()).run(&data, &mut net).unwrap();

    // Alg 3 matches Alg 2's bits…
    assert!(alg3.uplink_bits <= alg2.uplink_bits + alg2.uplink_bits / 100);
    assert!(alg3.uplink_bits < alg1.uplink_bits);
    // …and Alg 1's device complexity (Alg 2 pays the exact-SVD price in
    // the full d-dimensional space) — deterministic operation counts.
    assert!(
        alg3.source_ops * 2 < alg2.source_ops,
        "Alg 3 device ops {} vs Alg 2 {}",
        alg3.source_ops,
        alg2.source_ops
    );
}
