//! Integration tests of the communication accounting: the bits the
//! pipelines report must be exactly the bits the wire format produced.

use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::net::messages::Message;
use edge_kmeans::net::wire::Precision;
use edge_kmeans::prelude::*;

fn workload(n: usize, side: usize, seed: u64) -> Matrix {
    let ds = MnistLike::new(n, side).with_seed(seed).generate().unwrap();
    normalize_paper(&ds.points).0
}

#[test]
fn pipeline_bits_match_network_counters() {
    let data = workload(600, 10, 1);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d).with_seed(2);
    let mut net = Network::new(1);
    let out = JlFssJl::new(params).run(&data, &mut net).unwrap();
    assert_eq!(out.uplink_bits, net.stats().total_uplink_bits());
    assert_eq!(out.downlink_bits, net.stats().total_downlink_bits());
}

#[test]
fn fss_uplink_decomposes_into_basis_plus_coreset() {
    // Recompute the exact expected bit count of the FSS transmission from
    // its components and compare with the pipeline's measurement.
    let data = workload(500, 10, 3);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d).with_seed(4);
    let mut net = Network::new(1);
    let out = Fss::new(params.clone()).run(&data, &mut net).unwrap();

    // Rebuild the identical summary (same seed) and encode it manually.
    let fss = edge_kmeans::coreset::FssBuilder::new(2)
        .with_pca_dim(params.effective_pca_dim(d))
        .with_sample_size(params.coreset_size)
        .with_seed(ekm_linalg::random::derive_seed(params.seed, 3)) // seeds::FSS
        .build(&data)
        .unwrap();
    let basis_bits = Message::Basis {
        basis: fss.basis().clone(),
        precision: Precision::Full,
    }
    .encode()
    .1;
    let coreset_bits = Message::Coreset {
        points: fss.coordinates().clone(),
        weights: fss.weights().to_vec(),
        delta: fss.delta(),
        precision: Precision::Full,
        weights_precision: Precision::Full,
    }
    .encode()
    .1;
    assert_eq!(out.uplink_bits, (basis_bits + coreset_bits) as u64);
}

#[test]
fn quantized_bits_scale_with_s() {
    // The coreset-point payload is |S|·d''·(12+s) bits; check the slope.
    let data = workload(700, 10, 5);
    let (n, d) = data.shape();
    let base = SummaryParams::practical(2, n, d).with_seed(6);
    let bits_at = |s: u32| {
        let q = RoundingQuantizer::new(s).unwrap();
        let mut net = Network::new(1);
        JlFssJl::new(base.clone().with_quantizer(q))
            .run(&data, &mut net)
            .unwrap()
            .uplink_bits
    };
    let b8 = bits_at(8);
    let b16 = bits_at(16);
    let b32 = bits_at(32);
    // Same summary shape at every s (same seed): the point-payload slope
    // is exactly |S|·d'' bits per extra significand bit.
    let slope1 = (b16 - b8) as f64 / 8.0;
    let slope2 = (b32 - b16) as f64 / 16.0;
    assert!(
        (slope1 - slope2).abs() < 1e-9,
        "payload slope not constant: {slope1} vs {slope2}"
    );
    assert!(slope1 > 0.0);
}

#[test]
fn distributed_total_is_sum_of_sources() {
    let data = workload(900, 10, 7);
    let (n, d) = data.shape();
    let shards = partition_uniform(&data, 5, 8).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(9);
    let mut net = Network::new(5);
    let out = Bklw::new(params).run(&shards, &mut net).unwrap();
    let per_source: u64 = (0..5).map(|i| net.stats().uplink_bits(i)).sum();
    assert_eq!(out.uplink_bits, per_source);
}

#[test]
fn rerunning_same_pipeline_same_bits() {
    let data = workload(500, 10, 9);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d).with_seed(10);
    let run = || {
        let mut net = Network::new(1);
        FssJl::new(params.clone())
            .run(&data, &mut net)
            .unwrap()
            .uplink_bits
    };
    assert_eq!(run(), run());
}

#[test]
fn downlink_only_in_distributed_protocols() {
    let data = workload(500, 10, 11);
    let (n, d) = data.shape();
    let params = SummaryParams::practical(2, n, d).with_seed(12);
    // Centralized pipelines never use the downlink.
    let mut net = Network::new(1);
    let out = JlFss::new(params.clone()).run(&data, &mut net).unwrap();
    assert_eq!(out.downlink_bits, 0);
    // Distributed ones do (basis broadcast + allocations).
    let shards = partition_uniform(&data, 4, 13).unwrap();
    let mut net4 = Network::new(4);
    let out = Bklw::new(params).run(&shards, &mut net4).unwrap();
    assert!(out.downlink_bits > 0);
}

#[test]
fn bklw_uplink_dominated_by_svd_summaries() {
    // The §5.2 argument quantified: in BKLW the disPCA SVD summaries are
    // the dominant uplink phase for wide data, which is exactly the term
    // Algorithm 4's pre-projection shrinks.
    let data = workload(800, 14, 15); // 196-dim
    let (n, d) = data.shape();
    let shards = partition_uniform(&data, 5, 16).unwrap();
    let params = SummaryParams::practical(2, n, d).with_seed(17);
    let mut net = Network::new(5);
    let out = Bklw::new(params.clone()).run(&shards, &mut net).unwrap();
    let by_kind = net.stats().uplink_bits_by_kind();
    let svd = by_kind["svd-summary"];
    let coreset = by_kind["coreset"];
    let reports = by_kind["cost-report"];
    assert_eq!(svd + coreset + reports, out.uplink_bits);
    assert!(
        svd > coreset,
        "svd {svd} should dominate coreset {coreset} for wide data"
    );
    // Footnote 1: the scalar cost-report round is negligible.
    assert!(reports * 100 < out.uplink_bits);

    // And JL+BKLW shrinks precisely the svd-summary term.
    let mut net2 = Network::new(5);
    let _ = JlBklw::new(params).run(&shards, &mut net2).unwrap();
    let svd_jl = net2.stats().uplink_bits_by_kind()["svd-summary"];
    assert!(
        svd_jl < svd,
        "JL+BKLW svd bits {svd_jl} should be below BKLW's {svd}"
    );
}
