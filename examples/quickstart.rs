//! Quickstart: one edge device offloads k-means to an edge server.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Generates a normalized synthetic workload, runs the paper's
//! Algorithm 3 (JL+FSS+JL) against the no-reduction and FSS baselines,
//! and prints the three metrics the paper evaluates: normalized k-means
//! cost, normalized communication cost, and data-source running time.

use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, d, k) = (4_000, 128, 2);

    // A data source at the network edge collects n points in d dimensions.
    let raw = GaussianMixture::new(n, d, k)
        .with_separation(4.0)
        .with_cluster_std(1.0)
        .with_seed(7)
        .generate()?
        .points;
    let (dataset, _) = normalize_paper(&raw);
    println!("dataset: {n} points x {d} dims, k = {k}");

    // Reference solution computed from the full data (the X* proxy).
    let reference = evaluation::reference(&dataset, k, 5, 1)?;
    println!("reference k-means cost: {:.4}\n", reference.cost);

    let params = SummaryParams::practical(k, n, d).with_seed(42);
    println!(
        "summary parameters: coreset {} points, PCA dim {}, JL dims {} -> {}\n",
        params.coreset_size, params.pca_dim, params.jl_dim_before, params.jl_dim_after
    );

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10}",
        "pipeline", "norm. cost", "norm. comm", "source (s)", "summary"
    );
    let pipelines: Vec<Box<dyn CentralizedPipeline>> = vec![
        Box::new(NoReduction::new(params.clone())),
        Box::new(Fss::new(params.clone())),
        Box::new(JlFss::new(params.clone())),
        Box::new(FssJl::new(params.clone())),
        Box::new(JlFssJl::new(params.clone())),
    ];
    let mut net = Network::new(1);
    for pipe in pipelines {
        let out = pipe.run(&dataset, &mut net)?;
        let nc = evaluation::normalized_cost(&dataset, &out.centers, reference.cost)?;
        println!(
            "{:<12} {:>12.4} {:>12.2e} {:>12.4} {:>10}",
            pipe.name(),
            nc,
            out.normalized_comm(n, d),
            out.source_seconds,
            out.summary_points,
        );
    }

    println!("\nAll pipelines solve the same problem; the JL-based ones do it in a");
    println!("fraction of the bits (compare the `norm. comm` column with NR = 1).");
    Ok(())
}
