//! Configuring joint DR + CR + QT (paper §6.3).
//!
//! Run with `cargo run --release --example quantization_tuning`.
//!
//! Sweeps the rounding quantizer's significant-bit count `s` on a real
//! pipeline (measuring cost/communication like Figures 3–6), then runs the
//! paper's §6.3 optimizer, which picks `s` from the analytic
//! communication-cost model (24) under the error constraint (21b).

use edge_kmeans::clustering::lower_bound::cost_lower_bound;
use edge_kmeans::data::neurips_like::NeurIpsLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n_words, n_papers, k) = (2_000, 600, 2);

    let raw = NeurIpsLike::new(n_words, n_papers)
        .with_seed(5)
        .generate()?
        .points;
    let (dataset, _) = normalize_paper(&raw);
    let (n, d) = dataset.shape();
    println!("dataset: {n} words x {d} papers (NeurIPS-like), k = {k}\n");

    let reference = evaluation::reference(&dataset, k, 5, 1)?;
    let base = SummaryParams::practical(k, n, d).with_seed(17);

    // --- Empirical sweep over s (the Figure 3/4 experiment) ---
    println!(
        "{:>4} {:>12} {:>14} {:>12}",
        "s", "norm. cost", "norm. comm", "source (s)"
    );
    for s in [2u32, 4, 8, 12, 16, 24, 32, 44, 52] {
        let q = RoundingQuantizer::new(s)?;
        let params = base.clone().with_quantizer(q);
        let mut net = Network::new(1);
        let out = JlFssJl::new(params).run(&dataset, &mut net)?;
        let nc = evaluation::normalized_cost(&dataset, &out.centers, reference.cost)?;
        println!(
            "{s:>4} {:>12.4} {:>14.3e} {:>12.4}",
            nc,
            out.normalized_comm(n, d),
            out.source_seconds
        );
    }

    // --- The §6.3 analytic optimizer ---
    let weights = vec![1.0; n];
    let e = cost_lower_bound(&dataset, &weights, k, 0.1, 3)?;
    let optimizer = QtOptimizer {
        n,
        d,
        k,
        y0: 2.0,
        delta0: 0.1,
        lower_bound_e: e.lower_bound.max(1e-9),
        diameter: 2.0 * (d as f64).sqrt(), // the [-1,1]^d cube diameter
        max_norm: dataset.max_row_norm(),
    };
    let report = optimizer.optimize()?;
    let best = report.best();
    println!(
        "\nSection 6.3 optimizer (Y0 = {}, delta0 = {}):",
        optimizer.y0, optimizer.delta0
    );
    println!(
        "  chose s* = {} significant bits (epsilon = {:.4}, modeled comm {:.3e})",
        best.s,
        best.epsilon.unwrap_or(f64::NAN),
        best.comm_cost.unwrap_or(f64::NAN),
    );
    let feasible = report
        .candidates
        .iter()
        .filter(|c| c.epsilon.is_some())
        .count();
    println!("  {feasible}/52 bit-widths feasible under the error bound");
    println!("\nVery small s blows up the k-means cost; very large s wastes bits —");
    println!("the optimizer lands in between, matching the U-shape in the sweep above.");
    Ok(())
}
