//! Why the order of DR and CR matters (paper §4.3, Table 2).
//!
//! Run with `cargo run --release --example order_matters`.
//!
//! The paper's central structural finding: applying JL before FSS gives
//! near-linear device complexity but a log(n) communication term; applying
//! it after gives constant communication but super-linear complexity; and
//! JL+FSS+JL combines the strengths of both. This example measures all
//! three on a tall (large n) and a wide (large d) dataset and shows the
//! predicted crossover.

use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::prelude::*;

fn run_all(dataset: &Matrix, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let (n, d) = dataset.shape();
    println!("=== {label}: n = {n}, d = {d} ===");
    let reference = evaluation::reference(dataset, 2, 4, 1)?;
    let params = SummaryParams::practical(2, n, d).with_seed(23);
    println!(
        "{:<12} {:>11} {:>13} {:>12}",
        "pipeline", "norm. cost", "norm. comm", "source (s)"
    );
    let pipelines: Vec<Box<dyn CentralizedPipeline>> = vec![
        Box::new(JlFss::new(params.clone())),
        Box::new(FssJl::new(params.clone())),
        Box::new(JlFssJl::new(params.clone())),
    ];
    for pipe in pipelines {
        let mut net = Network::new(1);
        let out = pipe.run(dataset, &mut net)?;
        let nc = evaluation::normalized_cost(dataset, &out.centers, reference.cost)?;
        println!(
            "{:<12} {:>11.4} {:>13.3e} {:>12.4}",
            pipe.name(),
            nc,
            out.normalized_comm(n, d),
            out.source_seconds
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tall: many points, moderate dimension — FSS+JL pays its
    // O(nd·min(n,d)) complexity through the full-dimensional SVD.
    let tall_raw = GaussianMixture::new(12_000, 64, 2)
        .with_separation(4.0)
        .with_seed(1)
        .generate()?
        .points;
    run_all(&normalize_paper(&tall_raw).0, "tall dataset")?;

    // Wide: high dimension — JL+FSS's log(n)-sized projection pays off in
    // both time and bits (the d >> log n regime of Table 2).
    let wide_raw = GaussianMixture::new(2_000, 1_024, 2)
        .with_separation(4.0)
        .with_seed(2)
        .generate()?
        .points;
    run_all(&normalize_paper(&wide_raw).0, "wide dataset")?;

    println!("JL+FSS+JL keeps the low bits of FSS+JL and the low device time of");
    println!("JL+FSS on both shapes — Theorem 4.4's \"best of both\" in practice.");
    Ok(())
}
