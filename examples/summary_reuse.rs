//! Reusing one transmitted summary for several analytics.
//!
//! Run with `cargo run --release --example summary_reuse`.
//!
//! One advantage the paper claims for summary-based offloading over
//! federated-style model exchange (§1) is that the transmitted data can be
//! reused to compute *other* models. This example sends a single FSS
//! coreset and lets the server answer three different questions from it:
//! k-means for several values of k, and a cost profile ("elbow" curve) —
//! without any further communication.

use edge_kmeans::coreset::FssBuilder;
use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, side) = (3_000, 16);
    let raw = MnistLike::new(n, side).with_seed(2).generate()?.points;
    let (dataset, _) = normalize_paper(&raw);
    let d = dataset.cols();

    // The device builds ONE coreset and sends it once.
    let fss = FssBuilder::new(4) // sized for the largest k we may ask
        .with_pca_dim(24)
        .with_sample_size(500)
        .with_seed(13)
        .build(&dataset)?;
    let coreset = fss.to_coreset()?;
    let sent_scalars = fss.transmitted_scalars();
    println!(
        "one summary sent: {} coreset points, {} scalars ({:.2}% of raw)\n",
        coreset.len(),
        sent_scalars,
        100.0 * sent_scalars as f64 / (n * d) as f64
    );

    // The server reuses it for every k — zero extra uplink.
    println!(
        "{:>3} {:>16} {:>16} {:>10}",
        "k", "coreset kmeans", "true kmeans", "ratio"
    );
    for k in 1..=4 {
        let model = KMeans::new(k)
            .with_n_init(4)
            .with_seed(1)
            .fit_weighted(coreset.points(), coreset.weights())?;
        let summary_cost = edge_kmeans::clustering::cost::cost(&dataset, &model.centers)?;
        let direct = KMeans::new(k).with_n_init(4).with_seed(1).fit(&dataset)?;
        println!(
            "{k:>3} {summary_cost:>16.2} {:>16.2} {:>10.4}",
            direct.inertia,
            summary_cost / direct.inertia
        );
    }

    println!("\nThe same transmitted coreset answered four clustering problems;");
    println!("a federated-style protocol would have needed a round per model.");
    Ok(())
}
