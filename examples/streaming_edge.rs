//! An edge device summarizes data *while collecting it*.
//!
//! Run with `cargo run --release --example streaming_edge`.
//!
//! The paper's protocols assume the device holds its dataset when the
//! server asks. Real sensors collect over time; the merge-and-reduce
//! extension (`ekm_coreset::streaming`) maintains a bounded-size coreset
//! incrementally, so the device can answer a summary request at any
//! moment with one round of communication — and the answer is as good as
//! a batch-built coreset of the same size.

use edge_kmeans::coreset::StreamingCoreset;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::synth::GaussianMixture;
use edge_kmeans::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (total, d, k) = (20_000, 32, 3);
    let raw = GaussianMixture::new(total, d, k)
        .with_separation(5.0)
        .with_seed(21)
        .generate()?
        .points;
    let (data, _) = normalize_paper(&raw);

    let mut stream = StreamingCoreset::new(k, 512, 256).with_seed(4);
    println!("device collects {total} points in bursts; coreset budget 256 points\n");
    println!(
        "{:>10} {:>14} {:>12} {:>14}",
        "collected", "stored points", "reduces", "norm. cost"
    );

    let reference = evaluation::reference(&data, k, 4, 1)?;
    let burst = 2_500;
    let mut collected = 0;
    while collected < total {
        let idx: Vec<usize> = (collected..(collected + burst).min(total)).collect();
        stream.push_batch(&data.select_rows(&idx))?;
        collected += idx.len();

        // At any instant the device can answer a k-means request.
        let coreset = stream.finalize()?;
        let model = KMeans::new(k)
            .with_seed(2)
            .fit_weighted(coreset.points(), coreset.weights())?;
        let cost = edge_kmeans::clustering::cost::cost(
            &data.select_rows(&(0..collected).collect::<Vec<_>>()),
            &model.centers,
        )?;
        let ref_cost = edge_kmeans::clustering::cost::cost(
            &data.select_rows(&(0..collected).collect::<Vec<_>>()),
            &reference.centers,
        )?;
        println!(
            "{:>10} {:>14} {:>12} {:>14.4}",
            collected,
            stream.stored_points(),
            stream.reduces(),
            cost / ref_cost.max(1e-12),
        );
    }

    let final_coreset = stream.finalize()?;
    println!(
        "\nfinal summary: {} weighted points covering {} collected ({}x reduction),",
        final_coreset.len(),
        stream.points_seen(),
        stream.points_seen() / final_coreset.len().max(1)
    );
    println!(
        "total weight {:.1} (= n exactly), ready to ship in one round.",
        final_coreset.total_weight()
    );
    Ok(())
}
