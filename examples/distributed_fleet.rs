//! A fleet of edge devices jointly computes k-means (paper §5).
//!
//! Run with `cargo run --release --example distributed_fleet`.
//!
//! Ten data sources each hold a shard of an MNIST-like image dataset.
//! They cooperate with the edge server through the disPCA + disSS
//! protocols — either directly (BKLW) or after a shared-seed JL projection
//! (Algorithm 4, JL+BKLW) — and the example prints the per-source and
//! total traffic measured by the simulated network, bit by bit.

use edge_kmeans::data::mnist_like::MnistLike;
use edge_kmeans::data::normalize::normalize_paper;
use edge_kmeans::data::partition::partition_uniform;
use edge_kmeans::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, side, k, m) = (4_000, 16, 2, 10);
    let d = side * side;

    let raw = MnistLike::new(n, side).with_seed(3).generate()?.points;
    let (dataset, _) = normalize_paper(&raw);
    let shards = partition_uniform(&dataset, m, 11)?;
    println!(
        "fleet: {m} devices, {n} images x {d} pixels total ({} per device)\n",
        shards[0].rows()
    );

    let reference = evaluation::reference(&dataset, k, 5, 1)?;
    let params = SummaryParams::practical(k, n, d).with_seed(9);

    for pipeline in [
        Box::new(Bklw::new(params.clone())) as Box<dyn DistributedPipeline>,
        Box::new(JlBklw::new(params.clone())),
    ] {
        let mut net = Network::new(m);
        let out = pipeline.run(&shards, &mut net)?;
        let nc = evaluation::normalized_cost(&dataset, &out.centers, reference.cost)?;
        println!("=== {} ===", pipeline.name());
        println!("  normalized k-means cost : {nc:.4}");
        println!(
            "  total uplink             : {} bits ({:.2e} normalized)",
            out.uplink_bits,
            out.normalized_comm(n, d)
        );
        println!("  total downlink           : {} bits", out.downlink_bits);
        println!("  union coreset size       : {} points", out.summary_points);
        println!("  per-source uplink bits   :");
        for i in 0..m {
            println!("    device {i:>2}: {:>10} bits", net.stats().uplink_bits(i));
        }
        println!("  uplink by protocol phase :");
        for (kind, bits) in net.stats().uplink_bits_by_kind() {
            println!(
                "    {kind:<18} {bits:>10} bits ({:.1}%)",
                100.0 * *bits as f64 / out.uplink_bits as f64
            );
        }
        println!();
    }

    println!("JL+BKLW shrinks every device's SVD summary from O(k d / eps^2) to");
    println!("O(k log n / eps^4) scalars — the basis now lives in the projected space.");
    Ok(())
}
