//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest its property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]` headers), range
//! and tuple strategies, [`collection::vec`], `prop_map` /
//! `prop_flat_map`, [`prop_oneof!`], `prop_assert*!`, [`prop_assume!`],
//! and `num::f64::ANY`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! * **Deterministic seeding** — each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG handed to strategies (a seeded [`super::StdRng`]).
    pub type TestRng = rand::rngs::StdRng;
}

/// FNV-1a hash of a test name → per-test RNG seed (stable across runs).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the per-test RNG.
pub fn rng_for(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(name))
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::*;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A fixed value (proptest's `Just`).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between alternatives (built by [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// A size specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "vec size range is empty");
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Numeric strategies.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use rand::RngCore;

        /// Every representable `f64` bit pattern, including NaNs,
        /// infinities, and subnormals.
        pub struct Any;

        /// The canonical instance of [`Any`].
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut rand::rngs::StdRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one `#[test]` fn per item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __proptest_case in 0..config.cases {
                let _ = __proptest_case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    (config = ($cfg:expr);) => {};
}

/// Asserts a condition inside a property (plain `assert!` semantics —
/// this shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr,) => {
        $crate::prop_assume!($cond)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..5, 2usize..9).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..=7, y in -2.0f64..2.0) {
            prop_assert!((3..=7).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_and_vec((n, d) in (1usize..6, 1usize..6), fill in 0.0f64..1.0) {
            let v = collection::vec(0.0f64..1.0, n * d).generate_ok();
            prop_assert_eq!(v.len(), n * d);
            prop_assert!(fill < 1.0);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_draws_from_all(x in prop_oneof![0u64..10, 100u64..110]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }

        #[test]
        fn mapped_pairs_ordered(p in pair()) {
            prop_assert!(p.1 > p.0);
        }
    }

    trait GenerateOk {
        type Out;
        fn generate_ok(&self) -> Self::Out;
    }

    impl<S: Strategy> GenerateOk for S {
        type Out = S::Value;
        fn generate_ok(&self) -> S::Value {
            let mut rng = crate::rng_for("shim-self-test");
            self.generate(&mut rng)
        }
    }

    #[test]
    fn seeding_is_stable() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
