//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the `bench_micro` target compiling and useful: the same
//! `criterion_group!`/`criterion_main!` surface, backed by a simple
//! warmup + median-of-samples timing loop that prints one line per
//! benchmark. No statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Timings collected by every benchmark run in this process, in
/// execution order — the machine-readable counterpart of the printed
/// lines, consumed by harnesses that emit JSON perf reports.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// One benchmark's recorded timing.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/label` (or the bare label outside a named group).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
}

/// Drains and returns every timing recorded so far in this process.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("results lock"))
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            sample_size: 50,
            group: name.to_string(),
        }
    }
}

/// A named benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
    group: String,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    fn qualified(&self, label: &str) -> String {
        format!("{}/{label}", self.group)
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.qualified(&name.to_string()), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.qualified(&id.label),
            self.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (printing only; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Handed to each benchmark closure; [`Bencher::iter`] runs the timed body.
pub struct Bencher {
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `body`: warmup, then `sample_size` samples of an
    /// auto-calibrated batch, reporting the best median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warmup + batch calibration: target ~5ms per sample.
        let t0 = Instant::now();
        std::hint::black_box(body());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(body());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        sample_size,
        median_ns: f64::NAN,
    };
    f(&mut b);
    if b.median_ns.is_nan() {
        println!("  {label:<40} (no iter() call)");
    } else if b.median_ns >= 1.0e6 {
        println!("  {label:<40} {:>12.3} ms/iter", b.median_ns / 1.0e6);
    } else {
        println!("  {label:<40} {:>12.1} ns/iter", b.median_ns);
    }
    if b.median_ns.is_finite() {
        RESULTS.lock().expect("results lock").push(BenchResult {
            name: label.to_string(),
            median_ns: b.median_ns,
        });
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_a_number() {
        let mut b = Bencher {
            sample_size: 3,
            median_ns: f64::NAN,
        };
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert!(b.median_ns.is_finite() && b.median_ns >= 0.0);
    }

    #[test]
    fn results_are_recorded_and_drained() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("registry");
        g.sample_size(3);
        g.bench_function("recorded_case", |b| b.iter(|| 41u32 + 1));
        g.finish();
        let results = take_results();
        let mine = results
            .iter()
            .find(|r| r.name == "registry/recorded_case")
            .expect("benchmark recorded");
        assert!(mine.median_ns.is_finite() && mine.median_ns >= 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1u32));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
