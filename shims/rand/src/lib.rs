//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *API subset it actually uses* — `Rng::gen`,
//! `Rng::gen_range`, `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `seq::SliceRandom::shuffle` — behind the same paths as `rand` 0.8.
//!
//! The generator is xoshiro256++ seeded through the SplitMix64 expander:
//! deterministic across platforms, statistically solid for the simulation
//! and test workloads here (its streams differ from `rand`'s ChaCha-based
//! `StdRng`, which only matters if bit-identical streams against real
//! `rand` were required — they are not; all reproducibility guarantees in
//! this workspace are *within* the workspace).

#![forbid(unsafe_code)]

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling interface (blanket-implemented for every
/// [`RngCore`], mirroring `rand`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats, uniform over all values for integers/bool).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distributions (the subset backing [`Rng::gen`]).
pub mod distributions {
    use crate::RngCore;

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: `[0, 1)` for floats, uniform for
    /// integers, fair coin for `bool`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits → uniform on [0, 1), like rand 0.8.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform range sampling (the subset backing [`crate::Rng::gen_range`]).
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Unbiased-enough draw in `0..span` (`span == 0` means the full
        /// 64-bit range) via the widening-multiply trick.
        pub(crate) fn draw_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            let x = rng.next_u64();
            if span == 0 {
                x
            } else {
                ((x as u128 * span as u128) >> 64) as u64
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(draw_below(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = self.into_inner();
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128 + 1) as u128;
                        // span == 2^64 (the full domain) maps to 0 = "all bits".
                        lo.wrapping_add(draw_below(rng, span as u64) as $t)
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        // Floats draw a type-matched fraction in [0, 1) (53 bits for
        // f64, 24 for f32 — casting the f64 fraction to f32 could round
        // to 1.0); the final guard keeps the half-open contract even
        // when `start + u·(end−start)` rounds up to `end`.
        macro_rules! impl_float_range {
            ($($t:ty, $shift:expr, $denom:expr);*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let u = (rng.next_u64() >> $shift) as $t / $denom;
                        let v = self.start + u * (self.end - self.start);
                        if v < self.end {
                            v
                        } else {
                            self.start
                        }
                    }
                }
            )*};
        }
        impl_float_range!(f64, 11, (1u64 << 53) as f64; f32, 40, (1u64 << 24) as f32);
    }
}

/// Concrete generators.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman–Vigna),
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice extensions (the subset backing `partition_uniform`).
pub mod seq {
    use crate::RngCore;

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::distributions::uniform::draw_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(1..=64);
            assert!((1..=64).contains(&v));
            let w = rng.gen_range(-20..20);
            assert!((-20..20).contains(&w));
            let u = rng.gen_range(3usize..7);
            assert!((3..7).contains(&u));
            let x = rng.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn full_u64_range_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut high = false;
        for _ in 0..100 {
            let v: u64 = rng.gen_range(0u64..u64::MAX);
            high |= v > u64::MAX / 2;
        }
        assert!(high, "upper half of the u64 range never drawn");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn bool_is_fair() {
        let mut rng = StdRng::seed_from_u64(6);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_700..5_300).contains(&heads), "{heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let _: u32 = rng.gen_range(5..5);
    }
}
